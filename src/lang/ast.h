// Abstract syntax for the OverLog dialect (paper §2).
//
// A program is a list of `materialize` declarations, `watch` statements, and rules:
//
//   ruleId head@Loc(Arg, ...) :- body_term, body_term, ... .
//   ruleId delete head@Loc(Arg, ...) :- ... .
//
// Body terms are predicates (`pred@Loc(args)`), assignments (`Var := expr`), or boolean
// filter expressions. Head arguments may carry aggregates (`count<*>`, `min<D>`,
// `max<C>`, `avg<X>`). Identifiers beginning with an upper-case letter are variables;
// lower-case identifiers are predicate names, built-in function names (`f_*`), or named
// parameters resolved against a host-supplied map at parse time.

#ifndef SRC_LANG_AST_H_
#define SRC_LANG_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "src/runtime/table.h"
#include "src/runtime/value.h"

namespace p2 {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

// Binary and unary operators.
enum class OpKind {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
  kNot, kNeg,
};

struct Expr {
  enum class Kind {
    kConst,     // a literal or resolved named parameter
    kVar,       // upper-case identifier
    kBinary,    // children[0] op children[1]
    kUnary,     // op children[0]
    kCall,      // builtin f_*(children...)
    kInterval,  // children[0] in <children[1], children[2]>
    kMakeList,  // [children...]
  };

  Kind kind = Kind::kConst;
  Value constant;       // kConst
  std::string name;     // kVar: variable name; kCall: function name
  OpKind op = OpKind::kAdd;
  std::vector<ExprPtr> children;
  bool open_left = true;   // kInterval bracket styles
  bool open_right = true;
  int line = 0;

  // Printed form (diagnostics, introspection tables).
  std::string ToString() const;

  // Collects variable names referenced by this expression into `out`.
  void CollectVars(std::vector<std::string>* out) const;
};

// Aggregate functions allowed in head arguments.
enum class AggKind { kNone, kCount, kMin, kMax, kAvg, kSum };

// One head argument: either a plain expression or an aggregate over a variable
// (`count<*>` has a null expr).
struct HeadArg {
  AggKind agg = AggKind::kNone;
  ExprPtr expr;  // null only for count<*>

  std::string ToString() const;
};

// A predicate occurrence: `name@Loc(args)` or `name(args)`. The location specifier is
// always args[0] (the `@` form is normalized by the parser).
struct Predicate {
  std::string name;
  std::vector<ExprPtr> args;
  int line = 0;

  std::string ToString() const;
};

// A body term.
struct BodyTerm {
  enum class Kind { kPredicate, kAssign, kFilter };
  Kind kind = Kind::kPredicate;
  Predicate pred;        // kPredicate
  // `not pred(...)`: the rule fires only when NO matching row exists. Unbound
  // variables in a negated predicate are existential wildcards. Negated predicates
  // must be materialized and are evaluated after all positive terms (stratified).
  bool negated = false;
  std::string var;       // kAssign target
  ExprPtr expr;          // kAssign value / kFilter condition
  int line = 0;

  std::string ToString() const;
};

// The head of a rule: a predicate whose arguments may aggregate.
struct Head {
  std::string name;
  std::vector<HeadArg> args;  // args[0] is the location specifier
  int line = 0;

  std::string ToString() const;

  bool HasAggregate() const;
};

struct Rule {
  std::string id;
  bool is_delete = false;
  Head head;
  std::vector<BodyTerm> body;
  int line = 0;

  std::string ToString() const;
};

struct Program {
  std::vector<TableSpec> materializations;
  std::vector<Rule> rules;
  std::vector<std::string> watches;

  std::string ToString() const;
};

}  // namespace p2

#endif  // SRC_LANG_AST_H_
