#include "src/lang/expr.h"

#include "src/lang/builtins.h"

namespace p2 {

const Value* Bindings::Find(const std::string& name) const {
  for (const auto& [key, value] : vars_) {
    if (key == name) {
      return &value;
    }
  }
  return nullptr;
}

void Bindings::Set(const std::string& name, Value v) {
  for (auto& [key, value] : vars_) {
    if (key == name) {
      value = std::move(v);
      return;
    }
  }
  vars_.emplace_back(name, std::move(v));
}

void Bindings::TruncateTo(size_t n) {
  if (n < vars_.size()) {
    vars_.resize(n);
  }
}

std::string Bindings::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < vars_.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += vars_[i].first + "=" + vars_[i].second.ToString();
  }
  out += "}";
  return out;
}

Value EvalExpr(const Expr& expr, const Bindings& binds, EvalContext& ctx) {
  switch (expr.kind) {
    case Expr::Kind::kConst:
      return expr.constant;
    case Expr::Kind::kVar: {
      const Value* v = binds.Find(expr.name);
      return v != nullptr ? *v : Value::Null();
    }
    case Expr::Kind::kUnary: {
      if (expr.op == OpKind::kNot) {
        return Value::Bool(!EvalExpr(*expr.children[0], binds, ctx).Truthy());
      }
      return Value::Neg(EvalExpr(*expr.children[0], binds, ctx));
    }
    case Expr::Kind::kBinary: {
      // Short-circuit logicals.
      if (expr.op == OpKind::kAnd) {
        if (!EvalExpr(*expr.children[0], binds, ctx).Truthy()) {
          return Value::Bool(false);
        }
        return Value::Bool(EvalExpr(*expr.children[1], binds, ctx).Truthy());
      }
      if (expr.op == OpKind::kOr) {
        if (EvalExpr(*expr.children[0], binds, ctx).Truthy()) {
          return Value::Bool(true);
        }
        return Value::Bool(EvalExpr(*expr.children[1], binds, ctx).Truthy());
      }
      Value a = EvalExpr(*expr.children[0], binds, ctx);
      Value b = EvalExpr(*expr.children[1], binds, ctx);
      switch (expr.op) {
        case OpKind::kAdd: return Value::Add(a, b);
        case OpKind::kSub: return Value::Sub(a, b);
        case OpKind::kMul: return Value::Mul(a, b);
        case OpKind::kDiv: return Value::Div(a, b);
        case OpKind::kMod: return Value::Mod(a, b);
        case OpKind::kEq: return Value::Bool(a == b);
        case OpKind::kNe: return Value::Bool(!(a == b));
        case OpKind::kLt: return Value::Bool(a.Compare(b) < 0);
        case OpKind::kLe: return Value::Bool(a.Compare(b) <= 0);
        case OpKind::kGt: return Value::Bool(a.Compare(b) > 0);
        case OpKind::kGe: return Value::Bool(a.Compare(b) >= 0);
        default: return Value::Null();
      }
    }
    case Expr::Kind::kCall: {
      ValueList args;
      args.reserve(expr.children.size());
      for (const ExprPtr& c : expr.children) {
        args.push_back(EvalExpr(*c, binds, ctx));
      }
      return CallBuiltin(expr.name, args, ctx);
    }
    case Expr::Kind::kInterval: {
      Value x = EvalExpr(*expr.children[0], binds, ctx);
      Value lo = EvalExpr(*expr.children[1], binds, ctx);
      Value hi = EvalExpr(*expr.children[2], binds, ctx);
      return Value::Bool(Value::InInterval(x, lo, hi, expr.open_left, expr.open_right));
    }
    case Expr::Kind::kMakeList: {
      ValueList items;
      items.reserve(expr.children.size());
      for (const ExprPtr& c : expr.children) {
        items.push_back(EvalExpr(*c, binds, ctx));
      }
      return Value::List(std::move(items));
    }
  }
  return Value::Null();
}

}  // namespace p2
