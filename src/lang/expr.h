// Expression evaluation over variable bindings.
//
// Bindings map OverLog variables to Values during a rule strand execution. Evaluation is
// total: unbound variables and type mismatches evaluate to null, and a null filter is
// simply false (soft failure, in keeping with P2's soft-state philosophy).

#ifndef SRC_LANG_EXPR_H_
#define SRC_LANG_EXPR_H_

#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/lang/ast.h"
#include "src/runtime/value.h"

namespace p2 {

// A small ordered map of variable bindings. Rule strands carry at most a dozen or so
// variables, so a flat vector beats a hash map.
class Bindings {
 public:
  // Returns the bound value or nullptr.
  const Value* Find(const std::string& name) const;

  // Binds `name` (overwrites an existing binding).
  void Set(const std::string& name, Value v);

  bool Has(const std::string& name) const { return Find(name) != nullptr; }

  size_t size() const { return vars_.size(); }

  // Truncates back to `n` bindings; used to undo trail entries when backtracking
  // through join alternatives.
  void TruncateTo(size_t n);

  std::string ToString() const;

 private:
  std::vector<std::pair<std::string, Value>> vars_;
};

// Ambient state available to expressions: the virtual clock, a random stream, and the
// local node address.
struct EvalContext {
  double now = 0;
  Rng* rng = nullptr;
  const std::string* local_addr = nullptr;
};

// Evaluates `expr` under `binds`. Never throws; returns null on soft failure.
Value EvalExpr(const Expr& expr, const Bindings& binds, EvalContext& ctx);

}  // namespace p2

#endif  // SRC_LANG_EXPR_H_
