#include "src/lang/builtins.h"

#include <cmath>

namespace p2 {

Value CallBuiltin(const std::string& name, const ValueList& args, EvalContext& ctx) {
  if (name == "f_now") {
    return Value::Double(ctx.now);
  }
  if (name == "f_rand" || name == "f_randID") {
    if (ctx.rng == nullptr) {
      return Value::Null();
    }
    return Value::Id(ctx.rng->Next());
  }
  if (name == "f_pow2" && args.size() == 1 && args[0].is_numeric()) {
    uint64_t i = args[0].ToUint();
    if (i >= 64) {
      return Value::Id(0);
    }
    return Value::Id(1ULL << i);
  }
  if (name == "f_abs" && args.size() == 1 && args[0].is_numeric()) {
    if (args[0].kind() == Value::Kind::kDouble) {
      return Value::Double(std::fabs(args[0].AsDouble()));
    }
    if (args[0].kind() == Value::Kind::kInt) {
      return Value::Int(std::llabs(args[0].AsInt()));
    }
    return args[0];  // Ids are non-negative
  }
  if (name == "f_min" && args.size() == 2) {
    return args[0].Compare(args[1]) <= 0 ? args[0] : args[1];
  }
  if (name == "f_max" && args.size() == 2) {
    return args[0].Compare(args[1]) >= 0 ? args[0] : args[1];
  }
  if (name == "f_size" && args.size() == 1) {
    if (args[0].kind() == Value::Kind::kList) {
      return Value::Int(static_cast<int64_t>(args[0].AsList().size()));
    }
    if (args[0].kind() == Value::Kind::kString) {
      return Value::Int(static_cast<int64_t>(args[0].AsString().size()));
    }
    return Value::Null();
  }
  if (name == "f_str" && args.size() == 1) {
    return Value::Str(args[0].ToString());
  }
  if (name == "f_local") {
    return ctx.local_addr != nullptr ? Value::Str(*ctx.local_addr) : Value::Null();
  }
  if (name == "f_hash" && args.size() == 1) {
    // Stable 64-bit content hash onto the identifier ring (SHA-1's role in Chord):
    // FNV-1a followed by an avalanche finalizer so similar keys spread uniformly.
    uint64_t h = 1469598103934665603ULL;
    std::string s = args[0].ToString();
    for (char c : s) {
      h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
    }
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    return Value::Id(h ^ (h >> 31));
  }
  if (name == "f_prefix" && args.size() == 2 &&
      args[0].kind() == Value::Kind::kString && args[1].kind() == Value::Kind::kString) {
    const std::string& s = args[0].AsString();
    const std::string& p = args[1].AsString();
    return Value::Bool(s.size() >= p.size() && s.compare(0, p.size(), p) == 0);
  }
  return Value::Null();
}

bool IsKnownBuiltin(const std::string& name) {
  static const char* kNames[] = {"f_now", "f_rand",  "f_randID", "f_pow2",
                                 "f_abs", "f_min",   "f_max",    "f_size",
                                 "f_str", "f_local", "f_prefix", "f_hash"};
  for (const char* n : kNames) {
    if (name == n) {
      return true;
    }
  }
  return false;
}

}  // namespace p2
