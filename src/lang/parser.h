// Parser for the OverLog dialect.
//
// Named parameters: lower-case identifiers in expression position (e.g. `tProbe`,
// `mysnap`, `landmark`) are resolved against a host-supplied map when the program is
// parsed; unknown names are reported as errors. This is how the paper's parameterized
// listings (probe periods, snapshot frequencies, target rule ids) are instantiated
// per-node without textual templating.

#ifndef SRC_LANG_PARSER_H_
#define SRC_LANG_PARSER_H_

#include <map>
#include <string>

#include "src/lang/ast.h"

namespace p2 {

using ParamMap = std::map<std::string, Value>;

// Parses `source` into `out`. Returns false and sets `error` on any lexical, syntactic,
// or parameter-resolution failure. `out` is cleared first.
bool ParseProgram(const std::string& source, const ParamMap& params, Program* out,
                  std::string* error);

// Convenience overload with no parameters.
bool ParseProgram(const std::string& source, Program* out, std::string* error);

}  // namespace p2

#endif  // SRC_LANG_PARSER_H_
