// Lexer for the OverLog dialect.

#ifndef SRC_LANG_LEXER_H_
#define SRC_LANG_LEXER_H_

#include <string>
#include <vector>

namespace p2 {

enum class TokKind {
  kIdent,    // identifiers (case determines variable vs name at parse time)
  kNumber,   // integer or floating literal
  kString,   // double-quoted
  kLParen, kRParen, kLBracket, kRBracket,
  kComma, kDot, kAt,
  kColonDash,   // :-
  kColonEq,     // :=
  kLt, kLe, kGt, kGe, kEqEq, kNe,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kAndAnd, kOrOr, kBang,
  kEof,
};

struct Token {
  TokKind kind;
  std::string text;    // identifier or string contents
  double number = 0;   // kNumber value
  bool is_integer = false;
  int line = 0;
};

// Tokenizes `source`. On failure returns false and sets `error`.
// Comments: `/* ... */` and `// ...` and `# ...` to end of line.
bool Lex(const std::string& source, std::vector<Token>* out, std::string* error);

}  // namespace p2

#endif  // SRC_LANG_LEXER_H_
