#include "src/lang/parser.h"

#include <cctype>
#include <cmath>

#include "src/common/strings.h"
#include "src/lang/lexer.h"

namespace p2 {

namespace {

bool IsUpperIdent(const std::string& s) {
  return !s.empty() && std::isupper(static_cast<unsigned char>(s[0]));
}

class Parser {
 public:
  Parser(std::vector<Token> tokens, const ParamMap& params, Program* out, std::string* error)
      : tokens_(std::move(tokens)), params_(params), out_(out), error_(error) {}

  bool Run() {
    while (!At(TokKind::kEof)) {
      if (!ParseStatement()) {
        return false;
      }
    }
    return true;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Peek(size_t k) const {
    size_t i = pos_ + k;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool At(TokKind k) const { return Cur().kind == k; }
  bool AtIdent(const char* text) const {
    return Cur().kind == TokKind::kIdent && Cur().text == text;
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) {
      ++pos_;
    }
  }
  bool Fail(const std::string& msg) {
    *error_ = StrFormat("parse error at line %d: %s", Cur().line, msg.c_str());
    return false;
  }
  bool Expect(TokKind k, const char* what) {
    if (!At(k)) {
      return Fail(StrFormat("expected %s", what));
    }
    Advance();
    return true;
  }

  bool ParseStatement() {
    if (AtIdent("materialize")) {
      return ParseMaterialize();
    }
    if (AtIdent("watch")) {
      return ParseWatch();
    }
    return ParseRule();
  }

  bool ParseMaterialize() {
    Advance();  // materialize
    if (!Expect(TokKind::kLParen, "'('")) {
      return false;
    }
    TableSpec spec;
    if (!At(TokKind::kIdent)) {
      return Fail("expected table name");
    }
    spec.name = Cur().text;
    Advance();
    if (!Expect(TokKind::kComma, "','")) {
      return false;
    }
    // Lifetime.
    double lifetime = 0;
    if (!ParseMaterializeNumber(&lifetime)) {
      return false;
    }
    spec.lifetime_secs = lifetime;
    if (!Expect(TokKind::kComma, "','")) {
      return false;
    }
    // Max size.
    double max_size = 0;
    if (!ParseMaterializeNumber(&max_size)) {
      return false;
    }
    spec.max_size = std::isinf(max_size) ? std::numeric_limits<size_t>::max()
                                         : static_cast<size_t>(max_size);
    // Optional keys(...).
    if (At(TokKind::kComma)) {
      Advance();
      if (!AtIdent("keys")) {
        return Fail("expected keys(...)");
      }
      Advance();
      if (!Expect(TokKind::kLParen, "'('")) {
        return false;
      }
      while (!At(TokKind::kRParen)) {
        if (!At(TokKind::kNumber)) {
          return Fail("expected key field index");
        }
        int idx = static_cast<int>(Cur().number);
        if (idx < 1) {
          return Fail("key field indices are 1-based");
        }
        spec.key_fields.push_back(static_cast<size_t>(idx - 1));
        Advance();
        if (At(TokKind::kComma)) {
          Advance();
        }
      }
      Advance();  // ')'
    }
    if (!Expect(TokKind::kRParen, "')'")) {
      return false;
    }
    if (!Expect(TokKind::kDot, "'.'")) {
      return false;
    }
    out_->materializations.push_back(std::move(spec));
    return true;
  }

  // A lifetime/size position in materialize(): a number, `infinity`, or a numeric
  // named parameter.
  bool ParseMaterializeNumber(double* out) {
    if (AtIdent("infinity")) {
      *out = std::numeric_limits<double>::infinity();
      Advance();
      return true;
    }
    if (At(TokKind::kNumber)) {
      *out = Cur().number;
      Advance();
      return true;
    }
    if (At(TokKind::kIdent)) {
      auto it = params_.find(Cur().text);
      if (it != params_.end() && it->second.is_numeric()) {
        *out = it->second.ToDouble();
        Advance();
        return true;
      }
    }
    return Fail("expected number, infinity, or numeric parameter");
  }

  bool ParseWatch() {
    Advance();  // watch
    if (!Expect(TokKind::kLParen, "'('")) {
      return false;
    }
    if (!At(TokKind::kIdent)) {
      return Fail("expected tuple name in watch()");
    }
    out_->watches.push_back(Cur().text);
    Advance();
    if (!Expect(TokKind::kRParen, "')'")) {
      return false;
    }
    return Expect(TokKind::kDot, "'.'");
  }

  bool ParseRule() {
    Rule rule;
    rule.line = Cur().line;
    // Optional rule id, bare or bracketed.
    if (At(TokKind::kLBracket)) {
      Advance();
      if (!At(TokKind::kIdent)) {
        return Fail("expected rule id inside [ ]");
      }
      rule.id = Cur().text;
      Advance();
      if (!Expect(TokKind::kRBracket, "']'")) {
        return false;
      }
    } else if (At(TokKind::kIdent) && Cur().text != "delete" &&
               Peek(1).kind == TokKind::kIdent) {
      rule.id = Cur().text;
      Advance();
    }
    if (AtIdent("delete")) {
      rule.is_delete = true;
      Advance();
    }
    if (rule.id.empty()) {
      rule.id = StrFormat("rule_l%d", rule.line);
    }
    // Head.
    if (!ParseHead(&rule.head)) {
      return false;
    }
    if (!Expect(TokKind::kColonDash, "':-'")) {
      return false;
    }
    // Body terms.
    while (true) {
      BodyTerm term;
      if (!ParseBodyTerm(&term)) {
        return false;
      }
      rule.body.push_back(std::move(term));
      if (At(TokKind::kComma)) {
        Advance();
        continue;
      }
      break;
    }
    if (!Expect(TokKind::kDot, "'.'")) {
      return false;
    }
    out_->rules.push_back(std::move(rule));
    return true;
  }

  bool ParseHead(Head* head) {
    head->line = Cur().line;
    if (!At(TokKind::kIdent)) {
      return Fail("expected head predicate name");
    }
    head->name = Cur().text;
    Advance();
    bool have_loc = false;
    if (At(TokKind::kAt)) {
      Advance();
      HeadArg loc;
      loc.expr = ParsePrimary();
      if (loc.expr == nullptr) {
        return false;
      }
      head->args.push_back(std::move(loc));
      have_loc = true;
    }
    if (!Expect(TokKind::kLParen, "'(' after head name")) {
      return false;
    }
    while (!At(TokKind::kRParen)) {
      HeadArg arg;
      if (!ParseHeadArg(&arg)) {
        return false;
      }
      head->args.push_back(std::move(arg));
      if (At(TokKind::kComma)) {
        Advance();
      } else {
        break;
      }
    }
    if (!Expect(TokKind::kRParen, "')'")) {
      return false;
    }
    if (!have_loc && head->args.empty()) {
      return Fail("head predicate needs a location specifier");
    }
    return true;
  }

  static AggKind AggFromName(const std::string& name) {
    if (name == "count") return AggKind::kCount;
    if (name == "min") return AggKind::kMin;
    if (name == "max") return AggKind::kMax;
    if (name == "avg") return AggKind::kAvg;
    if (name == "sum") return AggKind::kSum;
    return AggKind::kNone;
  }

  bool ParseHeadArg(HeadArg* arg) {
    if (At(TokKind::kIdent) && Peek(1).kind == TokKind::kLt) {
      AggKind agg = AggFromName(Cur().text);
      if (agg != AggKind::kNone) {
        arg->agg = agg;
        Advance();  // agg name
        Advance();  // '<'
        if (At(TokKind::kStar)) {
          if (agg != AggKind::kCount) {
            return Fail("only count<*> may aggregate over *");
          }
          arg->expr = nullptr;
          Advance();
        } else if (At(TokKind::kIdent) && IsUpperIdent(Cur().text)) {
          // Aggregates range over a single variable (a general expression would be
          // ambiguous with the closing '>').
          auto var = std::make_unique<Expr>();
          var->kind = Expr::Kind::kVar;
          var->name = Cur().text;
          var->line = Cur().line;
          arg->expr = std::move(var);
          Advance();
        } else {
          return Fail("expected variable or * inside aggregate");
        }
        return Expect(TokKind::kGt, "'>' closing aggregate");
      }
    }
    arg->expr = ParseExpr();
    return arg->expr != nullptr;
  }

  bool ParseBodyTerm(BodyTerm* term) {
    term->line = Cur().line;
    // Negated predicate: `not pred@Loc(args)`.
    if (AtIdent("not") && Peek(1).kind == TokKind::kIdent &&
        !IsUpperIdent(Peek(1).text) && !StartsWith(Peek(1).text, "f_") &&
        (Peek(2).kind == TokKind::kAt || Peek(2).kind == TokKind::kLParen)) {
      Advance();  // not
      term->kind = BodyTerm::Kind::kPredicate;
      term->negated = true;
      return ParsePredicate(&term->pred);
    }
    if (At(TokKind::kIdent)) {
      const std::string& name = Cur().text;
      if (IsUpperIdent(name)) {
        if (Peek(1).kind == TokKind::kColonEq) {
          term->kind = BodyTerm::Kind::kAssign;
          term->var = name;
          Advance();
          Advance();
          term->expr = ParseExpr();
          return term->expr != nullptr;
        }
        term->kind = BodyTerm::Kind::kFilter;
        term->expr = ParseExpr();
        return term->expr != nullptr;
      }
      // Lower-case identifier: a builtin call is a filter, anything else followed by
      // `@` or `(` is a predicate.
      if (!StartsWith(name, "f_") &&
          (Peek(1).kind == TokKind::kAt || Peek(1).kind == TokKind::kLParen)) {
        term->kind = BodyTerm::Kind::kPredicate;
        return ParsePredicate(&term->pred);
      }
    }
    term->kind = BodyTerm::Kind::kFilter;
    term->expr = ParseExpr();
    return term->expr != nullptr;
  }

  bool ParsePredicate(Predicate* pred) {
    pred->line = Cur().line;
    pred->name = Cur().text;
    Advance();
    bool have_loc = false;
    if (At(TokKind::kAt)) {
      Advance();
      ExprPtr loc = ParsePrimary();
      if (loc == nullptr) {
        return false;
      }
      pred->args.push_back(std::move(loc));
      have_loc = true;
    }
    if (!Expect(TokKind::kLParen, "'(' after predicate name")) {
      return false;
    }
    while (!At(TokKind::kRParen)) {
      ExprPtr arg = ParseExpr();
      if (arg == nullptr) {
        return false;
      }
      pred->args.push_back(std::move(arg));
      if (At(TokKind::kComma)) {
        Advance();
      } else {
        break;
      }
    }
    if (!Expect(TokKind::kRParen, "')'")) {
      return false;
    }
    if (!have_loc && pred->args.empty()) {
      return Fail(StrFormat("predicate %s needs a location specifier", pred->name.c_str()));
    }
    return true;
  }

  // ----- expressions (precedence climbing) -----

  ExprPtr ParseExpr() { return ParseOr(); }

  ExprPtr MakeBinary(OpKind op, ExprPtr a, ExprPtr b, int line) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kBinary;
    e->op = op;
    e->children.push_back(std::move(a));
    e->children.push_back(std::move(b));
    e->line = line;
    return e;
  }

  ExprPtr ParseOr() {
    ExprPtr lhs = ParseAnd();
    while (lhs != nullptr && At(TokKind::kOrOr)) {
      int line = Cur().line;
      Advance();
      ExprPtr rhs = ParseAnd();
      if (rhs == nullptr) {
        return nullptr;
      }
      lhs = MakeBinary(OpKind::kOr, std::move(lhs), std::move(rhs), line);
    }
    return lhs;
  }

  ExprPtr ParseAnd() {
    ExprPtr lhs = ParseCmp();
    while (lhs != nullptr && At(TokKind::kAndAnd)) {
      int line = Cur().line;
      Advance();
      ExprPtr rhs = ParseCmp();
      if (rhs == nullptr) {
        return nullptr;
      }
      lhs = MakeBinary(OpKind::kAnd, std::move(lhs), std::move(rhs), line);
    }
    return lhs;
  }

  ExprPtr ParseCmp() {
    ExprPtr lhs = ParseAddSub();
    if (lhs == nullptr) {
      return nullptr;
    }
    if (AtIdent("in")) {
      int line = Cur().line;
      Advance();
      bool open_left;
      if (At(TokKind::kLParen)) {
        open_left = true;
      } else if (At(TokKind::kLBracket)) {
        open_left = false;
      } else {
        Fail("expected '(' or '[' after in");
        return nullptr;
      }
      Advance();
      ExprPtr lo = ParseAddSub();
      if (lo == nullptr || !Expect(TokKind::kComma, "','")) {
        return nullptr;
      }
      ExprPtr hi = ParseAddSub();
      if (hi == nullptr) {
        return nullptr;
      }
      bool open_right;
      if (At(TokKind::kRParen)) {
        open_right = true;
      } else if (At(TokKind::kRBracket)) {
        open_right = false;
      } else {
        Fail("expected ')' or ']' closing interval");
        return nullptr;
      }
      Advance();
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kInterval;
      e->open_left = open_left;
      e->open_right = open_right;
      e->children.push_back(std::move(lhs));
      e->children.push_back(std::move(lo));
      e->children.push_back(std::move(hi));
      e->line = line;
      return e;
    }
    OpKind op;
    switch (Cur().kind) {
      case TokKind::kEqEq: op = OpKind::kEq; break;
      case TokKind::kNe: op = OpKind::kNe; break;
      case TokKind::kLt: op = OpKind::kLt; break;
      case TokKind::kLe: op = OpKind::kLe; break;
      case TokKind::kGt: op = OpKind::kGt; break;
      case TokKind::kGe: op = OpKind::kGe; break;
      default:
        return lhs;
    }
    int line = Cur().line;
    Advance();
    ExprPtr rhs = ParseAddSub();
    if (rhs == nullptr) {
      return nullptr;
    }
    return MakeBinary(op, std::move(lhs), std::move(rhs), line);
  }

  ExprPtr ParseAddSub() {
    ExprPtr lhs = ParseMulDiv();
    while (lhs != nullptr && (At(TokKind::kPlus) || At(TokKind::kMinus))) {
      OpKind op = At(TokKind::kPlus) ? OpKind::kAdd : OpKind::kSub;
      int line = Cur().line;
      Advance();
      ExprPtr rhs = ParseMulDiv();
      if (rhs == nullptr) {
        return nullptr;
      }
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs), line);
    }
    return lhs;
  }

  ExprPtr ParseMulDiv() {
    ExprPtr lhs = ParseUnary();
    while (lhs != nullptr &&
           (At(TokKind::kStar) || At(TokKind::kSlash) || At(TokKind::kPercent))) {
      OpKind op = At(TokKind::kStar)
                      ? OpKind::kMul
                      : (At(TokKind::kSlash) ? OpKind::kDiv : OpKind::kMod);
      int line = Cur().line;
      Advance();
      ExprPtr rhs = ParseUnary();
      if (rhs == nullptr) {
        return nullptr;
      }
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs), line);
    }
    return lhs;
  }

  ExprPtr ParseUnary() {
    if (At(TokKind::kBang) || At(TokKind::kMinus)) {
      OpKind op = At(TokKind::kBang) ? OpKind::kNot : OpKind::kNeg;
      int line = Cur().line;
      Advance();
      ExprPtr inner = ParseUnary();
      if (inner == nullptr) {
        return nullptr;
      }
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kUnary;
      e->op = op;
      e->children.push_back(std::move(inner));
      e->line = line;
      return e;
    }
    return ParsePrimary();
  }

  ExprPtr MakeConst(Value v, int line) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kConst;
    e->constant = std::move(v);
    e->line = line;
    return e;
  }

  ExprPtr ParsePrimary() {
    int line = Cur().line;
    if (At(TokKind::kNumber)) {
      Value v = Cur().is_integer ? Value::Int(static_cast<int64_t>(Cur().number))
                                 : Value::Double(Cur().number);
      Advance();
      return MakeConst(std::move(v), line);
    }
    if (At(TokKind::kString)) {
      Value v = Value::Str(Cur().text);
      Advance();
      return MakeConst(std::move(v), line);
    }
    if (At(TokKind::kLParen)) {
      Advance();
      ExprPtr inner = ParseExpr();
      if (inner == nullptr) {
        return nullptr;
      }
      if (!Expect(TokKind::kRParen, "')'")) {
        return nullptr;
      }
      return inner;
    }
    if (At(TokKind::kLBracket)) {
      // List literal.
      Advance();
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kMakeList;
      e->line = line;
      while (!At(TokKind::kRBracket)) {
        ExprPtr item = ParseExpr();
        if (item == nullptr) {
          return nullptr;
        }
        e->children.push_back(std::move(item));
        if (At(TokKind::kComma)) {
          Advance();
        } else {
          break;
        }
      }
      if (!Expect(TokKind::kRBracket, "']'")) {
        return nullptr;
      }
      return e;
    }
    if (At(TokKind::kIdent)) {
      std::string name = Cur().text;
      if (IsUpperIdent(name)) {
        Advance();
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::kVar;
        e->name = std::move(name);
        e->line = line;
        return e;
      }
      if (name == "infinity") {
        Advance();
        return MakeConst(Value::Double(std::numeric_limits<double>::infinity()), line);
      }
      if (name == "true") {
        Advance();
        return MakeConst(Value::Bool(true), line);
      }
      if (name == "false") {
        Advance();
        return MakeConst(Value::Bool(false), line);
      }
      if (name == "null") {
        Advance();
        return MakeConst(Value::Null(), line);
      }
      if (StartsWith(name, "f_")) {
        // Builtin function call.
        Advance();
        if (!Expect(TokKind::kLParen, "'(' after builtin name")) {
          return nullptr;
        }
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::kCall;
        e->name = std::move(name);
        e->line = line;
        while (!At(TokKind::kRParen)) {
          ExprPtr arg = ParseExpr();
          if (arg == nullptr) {
            return nullptr;
          }
          e->children.push_back(std::move(arg));
          if (At(TokKind::kComma)) {
            Advance();
          } else {
            break;
          }
        }
        if (!Expect(TokKind::kRParen, "')'")) {
          return nullptr;
        }
        return e;
      }
      // Named parameter.
      auto it = params_.find(name);
      if (it == params_.end()) {
        Fail(StrFormat("unknown parameter or constant '%s' (supply it in the ParamMap)",
                       name.c_str()));
        return nullptr;
      }
      Advance();
      return MakeConst(it->second, line);
    }
    Fail("expected expression");
    return nullptr;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  const ParamMap& params_;
  Program* out_;
  std::string* error_;
};

}  // namespace

bool ParseProgram(const std::string& source, const ParamMap& params, Program* out,
                  std::string* error) {
  *out = Program();
  std::vector<Token> tokens;
  if (!Lex(source, &tokens, error)) {
    return false;
  }
  Parser parser(std::move(tokens), params, out, error);
  return parser.Run();
}

bool ParseProgram(const std::string& source, Program* out, std::string* error) {
  ParamMap empty;
  return ParseProgram(source, empty, out, error);
}

}  // namespace p2
