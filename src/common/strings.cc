#include "src/common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace p2 {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out.append(sep);
    }
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string ReplaceAll(std::string_view s, std::string_view from, std::string_view to) {
  std::string out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      return out;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(needed > 0 ? static_cast<size_t>(needed) : 0, '\0');
  if (needed > 0) {
    vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace p2
