// Small string helpers shared across modules.

#ifndef SRC_COMMON_STRINGS_H_
#define SRC_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace p2 {

// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

// Returns true if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

// Replaces every occurrence of `from` in `s` with `to` and returns the result.
std::string ReplaceAll(std::string_view s, std::string_view from, std::string_view to);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace p2

#endif  // SRC_COMMON_STRINGS_H_
