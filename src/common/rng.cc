#include "src/common/rng.h"

namespace p2 {

uint64_t Rng::Next() {
  state_ += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Rejection sampling to avoid modulo bias; the loop terminates quickly because the
  // rejected region is always smaller than half of the 64-bit space.
  const uint64_t limit = bound * ((~0ULL) / bound);
  uint64_t v = Next();
  while (v >= limit) {
    v = Next();
  }
  return v % bound;
}

double Rng::NextDouble() {
  // 53 bits of mantissa.
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

Rng Rng::Fork() { return Rng(Next()); }

uint64_t DeriveSeed(uint64_t base, std::string_view label) {
  // FNV-style absorption of the label into the base, finished with one SplitMix64
  // avalanche so adjacent labels ("node/n1" vs "node/n2") land far apart.
  uint64_t h = base ^ 0x9e3779b97f4a7c15ULL;
  for (char c : label) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  h += 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

}  // namespace p2
