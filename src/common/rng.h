// Deterministic pseudo-random number generation for the simulation.
//
// Every source of randomness in the engine (tuple nonces, Chord IDs, probe keys, network
// latency jitter) draws from an explicitly seeded Rng so that whole-system runs are
// reproducible. The generator is SplitMix64, which is small, fast, and has no measurable
// bias for the population sizes used here.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>
#include <string_view>

namespace p2 {

// A seeded, deterministic 64-bit PRNG (SplitMix64).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  // Returns the next raw 64-bit value.
  uint64_t Next();

  // Returns a uniformly distributed value in [0, bound). `bound` must be nonzero.
  uint64_t NextBelow(uint64_t bound);

  // Returns a uniformly distributed double in [0, 1).
  double NextDouble();

  // Derives an independent child generator; useful for giving each node its own stream.
  Rng Fork();

 private:
  uint64_t state_;
};

// Derives a child seed from a base seed and a label, e.g. DeriveSeed(fleet, "node/n3")
// or DeriveSeed(net, "link/n0>n1"). The derivation is pure — it depends only on the
// two inputs, never on creation order — which is what makes "same fleet seed" mean
// the same thing regardless of node-add order or shard count (docs/SCALING.md).
uint64_t DeriveSeed(uint64_t base, std::string_view label);

}  // namespace p2

#endif  // SRC_COMMON_RNG_H_
