// Aggregate computation for OverLog heads: count<*>, min<X>, max<X>, avg<X>.
//
// Two evaluation modes exist (see DESIGN.md §4):
//  * Per-event aggregates — a rule with an event trigger aggregates over the match set
//    produced by one triggering event (count over an empty set yields 0; min/max/avg
//    over an empty set yield nothing).
//  * Continuous aggregates — a rule whose body is entirely materialized is re-evaluated
//    as a group-by whenever any body table changes; only changed groups re-emit.

#ifndef SRC_DATAFLOW_AGGREGATES_H_
#define SRC_DATAFLOW_AGGREGATES_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/lang/ast.h"
#include "src/runtime/value.h"

namespace p2 {

// Incremental accumulator for one aggregate group.
class Aggregator {
 public:
  explicit Aggregator(AggKind kind) : kind_(kind) {}

  // Feeds one row's aggregate-expression value (ignored for count<*>).
  void Add(const Value& v);

  // Count always has a result (possibly 0); the others require at least one row.
  bool HasResult() const;
  Value Result() const;

 private:
  AggKind kind_;
  uint64_t count_ = 0;
  bool any_ = false;
  Value best_;       // min/max
  double sum_ = 0;   // avg
};

// Group-by accumulation: groups are keyed by the evaluated non-aggregate head args.
class GroupedAggregate {
 public:
  explicit GroupedAggregate(AggKind kind) : kind_(kind) {}

  // Adds a row for the group identified by `key_values`.
  void Add(const ValueList& key_values, const Value& agg_input);

  // Visits each group: fn(key_values, result).
  void ForEach(const std::function<void(const ValueList&, const Value&)>& fn) const;

  bool empty() const { return groups_.empty(); }

 private:
  struct Group {
    ValueList key;
    Aggregator agg;
  };
  static std::string KeyString(const ValueList& key);
  AggKind kind_;
  std::map<std::string, Group> groups_;
};

}  // namespace p2

#endif  // SRC_DATAFLOW_AGGREGATES_H_
