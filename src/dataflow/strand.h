// Rule strands: the compiled, executable form of one OverLog rule (paper §2, Figure 1).
//
// The planner translates each rule into a strand: a trigger predicate followed by a
// sequence of operations — table lookups (joins, the strand's stateful "stages"),
// assignments, and selection filters — ending in a head projection that emits (or, for
// `delete` rules, retracts) the result tuple. Strand execution walks the operations
// depth-first over the join alternatives, firing the tracer's input / precondition /
// stage-completion / output taps exactly where P2's dataflow taps sit (Figure 2).
//
// ContinuousAggRule covers rules whose body is entirely materialized and whose head
// aggregates: they re-evaluate as a full group-by whenever a body table changes.

#ifndef SRC_DATAFLOW_STRAND_H_
#define SRC_DATAFLOW_STRAND_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/dataflow/aggregates.h"
#include "src/lang/ast.h"
#include "src/lang/expr.h"
#include "src/runtime/table.h"
#include "src/trace/metrics.h"
#include "src/trace/tracer.h"

namespace p2 {

class Node;

// One post-trigger operation in a strand.
struct StrandOp {
  enum class Kind {
    kJoin,       // positive table lookup: one branch per matching row
    kNotExists,  // negated predicate: prune the branch if any row matches
    kAssign,
    kFilter,
  };
  Kind kind = Kind::kFilter;
  const Predicate* pred = nullptr;  // kJoin / kNotExists
  Table* table = nullptr;           // kJoin / kNotExists
  int stage = 0;                    // kJoin: 1-based stage index
  // kJoin: every primary-key position of `table` is bound at this point, so the join
  // is an O(1) key probe instead of a scan (set by the planner).
  bool key_lookup = false;
  // kJoin / kNotExists: some (but not necessarily all-key) argument positions are
  // bound, so the lookup probes secondary index `index_id` over `probe_positions`
  // instead of scanning. Mutually exclusive with key_lookup (which wins when the
  // whole primary key is bound). Set by the planner when the node enables
  // NodeOptions::use_join_indexes.
  bool use_index = false;
  size_t index_id = 0;
  std::vector<size_t> probe_positions;
  const std::string* var = nullptr; // kAssign target
  const Expr* expr = nullptr;       // kAssign value / kFilter condition
};

// Attempts to unify `pred`'s argument pattern with `tuple`, extending `binds` (bound
// variables must match; unbound variables bind; constants and expressions must evaluate
// equal). Returns false on mismatch — `binds` may then contain partial bindings, so the
// caller must truncate back to its mark. Exposed for tests and shared by strands,
// continuous aggregates, and trigger matching.
bool MatchPredicate(const Predicate& pred, const Tuple& tuple, Bindings* binds,
                    EvalContext& ctx);

class Strand {
 public:
  // `trigger` may be a periodic, event, or table-delta predicate. `num_stages` is the
  // number of kJoin ops in `ops`.
  Strand(Node* node, const Rule* rule, const Predicate* trigger, std::vector<StrandOp> ops,
         int num_stages);

  Strand(const Strand&) = delete;
  Strand& operator=(const Strand&) = delete;

  const std::string& rule_id() const { return rule_->id; }
  const Rule& rule() const { return *rule_; }
  const Predicate& trigger() const { return *trigger_; }
  const std::string& trigger_name() const { return trigger_->name; }
  int num_stages() const { return num_stages_; }
  const std::vector<StrandOp>& ops() const { return ops_; }

  // Runs the strand for one triggering tuple.
  void Trigger(const TupleRef& event);

  // Telemetry handle (owned by the node's MetricsRegistry; null when metrics are
  // disabled). The node times each Trigger into it — see Node::TriggerStrand.
  RuleMetrics* metrics() const { return metrics_; }
  void set_metrics(RuleMetrics* m) { metrics_ = m; }

 private:
  // The evaluation context (virtual now, rng, local address) is built once per
  // Trigger and threaded through: strand execution is synchronous, so virtual time
  // cannot advance mid-strand and rebuilding it per recursion level would only
  // re-run the scheduler clock lookup on every join branch.
  void RunOps(size_t op_index, Bindings& binds, EvalContext& ctx);
  void EmitLeaf(const Bindings& binds, EvalContext& ctx);
  void EmitHeadTuple(const Bindings& binds, const Value* agg_result, EvalContext& ctx);
  void EmitAggregates(const Bindings& trigger_binds, EvalContext& ctx);

  Node* node_;
  const Rule* rule_;
  const Predicate* trigger_;
  std::vector<StrandOp> ops_;
  int num_stages_;
  RuleMetrics* metrics_ = nullptr;
  TraceTarget trace_target_;
  std::vector<bool> stage_open_;  // per join stage: processed input, not yet "sought new"

  // Aggregate-head support.
  bool has_agg_ = false;
  AggKind agg_kind_ = AggKind::kNone;
  const Expr* agg_expr_ = nullptr;  // null for count<*>
  size_t agg_position_ = 0;         // index into head args
  std::vector<Bindings> batch_;     // match set collected for the current trigger
};

// A rule whose body predicates are all materialized and whose head aggregates:
// re-evaluated in full on any body-table change, emitting only changed groups. When a
// group vanishes and the aggregate is count, a zero-count tuple is emitted once.
class ContinuousAggRule {
 public:
  ContinuousAggRule(Node* node, const Rule* rule, std::vector<StrandOp> ops);

  ContinuousAggRule(const ContinuousAggRule&) = delete;
  ContinuousAggRule& operator=(const ContinuousAggRule&) = delete;

  const std::string& rule_id() const { return rule_->id; }
  const Rule& rule() const { return *rule_; }

  // Names of the body tables whose changes must mark this rule dirty.
  std::vector<std::string> BodyTableNames() const;

  // Recomputes the group-by and emits changed groups.
  void Reevaluate();

  // Telemetry handle, as on Strand (execs counts re-evaluations).
  RuleMetrics* metrics() const { return metrics_; }
  void set_metrics(RuleMetrics* m) { metrics_ = m; }

  bool dirty = false;  // coalesces re-evaluation requests (managed by the node)

 private:
  void Recurse(size_t op_index, Bindings& binds, GroupedAggregate* groups,
               EvalContext& ctx);
  ValueList GroupKey(const Bindings& binds, bool* ok, EvalContext& ctx);

  Node* node_;
  const Rule* rule_;
  std::vector<StrandOp> ops_;
  RuleMetrics* metrics_ = nullptr;
  AggKind agg_kind_ = AggKind::kNone;
  const Expr* agg_expr_ = nullptr;
  size_t agg_position_ = 0;
  // Previous emission per group (keyed by printable group key).
  std::map<std::string, std::pair<ValueList, Value>> last_emitted_;
};

}  // namespace p2

#endif  // SRC_DATAFLOW_STRAND_H_
