#include "src/dataflow/aggregates.h"

namespace p2 {

void Aggregator::Add(const Value& v) {
  ++count_;
  if (kind_ == AggKind::kCount) {
    return;
  }
  if (v.is_null()) {
    return;
  }
  if (!any_) {
    any_ = true;
    best_ = v;
    sum_ = v.is_numeric() ? v.ToDouble() : 0;
    return;
  }
  switch (kind_) {
    case AggKind::kMin:
      if (v.Compare(best_) < 0) {
        best_ = v;
      }
      break;
    case AggKind::kMax:
      if (v.Compare(best_) > 0) {
        best_ = v;
      }
      break;
    case AggKind::kAvg:
    case AggKind::kSum:
      sum_ += v.is_numeric() ? v.ToDouble() : 0;
      break;
    default:
      break;
  }
}

bool Aggregator::HasResult() const {
  if (kind_ == AggKind::kCount || kind_ == AggKind::kSum) {
    return true;  // the empty sum is 0, like the empty count
  }
  return any_;
}

Value Aggregator::Result() const {
  switch (kind_) {
    case AggKind::kCount:
      return Value::Int(static_cast<int64_t>(count_));
    case AggKind::kMin:
    case AggKind::kMax:
      return any_ ? best_ : Value::Null();
    case AggKind::kAvg:
      return any_ ? Value::Double(sum_ / static_cast<double>(count_)) : Value::Null();
    case AggKind::kSum:
      return sum_ == static_cast<double>(static_cast<int64_t>(sum_))
                 ? Value::Int(static_cast<int64_t>(sum_))
                 : Value::Double(sum_);
    default:
      return Value::Null();
  }
}

std::string GroupedAggregate::KeyString(const ValueList& key) {
  std::string out;
  for (const Value& v : key) {
    out += static_cast<char>(v.kind());
    out += v.ToString();
    out += '\x1f';
  }
  return out;
}

void GroupedAggregate::Add(const ValueList& key_values, const Value& agg_input) {
  std::string ks = KeyString(key_values);
  auto it = groups_.find(ks);
  if (it == groups_.end()) {
    it = groups_.emplace(std::move(ks), Group{key_values, Aggregator(kind_)}).first;
  }
  it->second.agg.Add(agg_input);
}

void GroupedAggregate::ForEach(
    const std::function<void(const ValueList&, const Value&)>& fn) const {
  for (const auto& [ks, group] : groups_) {
    if (group.agg.HasResult()) {
      fn(group.key, group.agg.Result());
    }
  }
}

}  // namespace p2
