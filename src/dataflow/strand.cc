#include "src/dataflow/strand.h"

#include "src/net/node.h"

namespace p2 {

namespace {

// True if every variable mentioned by `expr` is bound.
bool VarsBound(const Expr& expr, const Bindings& binds) {
  std::vector<std::string> vars;
  expr.CollectVars(&vars);
  for (const std::string& v : vars) {
    if (!binds.Has(v)) {
      return false;
    }
  }
  return true;
}

// Evaluates the probe key for an indexed lookup op: one value per probe position,
// in EnsureIndex order (the planner guarantees these expressions are bound and
// non-volatile here).
ValueList ProbeKey(const StrandOp& op, const Bindings& binds, EvalContext& ctx) {
  ValueList key;
  key.reserve(op.probe_positions.size());
  for (size_t pos : op.probe_positions) {
    key.push_back(EvalExpr(*op.pred->args[pos], binds, ctx));
  }
  return key;
}

}  // namespace

// Existential match for negated predicates: bound variables and expressions must
// equal the row's fields; unbound variables are wildcards and bind nothing.
bool MatchesExistentially(const Predicate& pred, const Tuple& tuple,
                          const Bindings& binds, EvalContext& ctx) {
  if (pred.args.size() != tuple.arity()) {
    return false;
  }
  for (size_t i = 0; i < pred.args.size(); ++i) {
    const Expr& arg = *pred.args[i];
    if (arg.kind == Expr::Kind::kVar) {
      const Value* bound = binds.Find(arg.name);
      if (bound == nullptr) {
        continue;  // wildcard
      }
      if (!(*bound == tuple.field(i))) {
        return false;
      }
      continue;
    }
    if (!(EvalExpr(arg, binds, ctx) == tuple.field(i))) {
      return false;
    }
  }
  return true;
}

bool MatchPredicate(const Predicate& pred, const Tuple& tuple, Bindings* binds,
                    EvalContext& ctx) {
  if (pred.args.size() != tuple.arity()) {
    return false;
  }
  for (size_t i = 0; i < pred.args.size(); ++i) {
    const Expr& arg = *pred.args[i];
    if (arg.kind == Expr::Kind::kVar) {
      const Value* bound = binds->Find(arg.name);
      if (bound == nullptr) {
        binds->Set(arg.name, tuple.field(i));
        continue;
      }
      if (!(*bound == tuple.field(i))) {
        return false;
      }
      continue;
    }
    Value want = EvalExpr(arg, *binds, ctx);
    if (!(want == tuple.field(i))) {
      return false;
    }
  }
  return true;
}

Strand::Strand(Node* node, const Rule* rule, const Predicate* trigger,
               std::vector<StrandOp> ops, int num_stages)
    : node_(node),
      rule_(rule),
      trigger_(trigger),
      ops_(std::move(ops)),
      num_stages_(num_stages) {
  trace_target_.strand = this;
  trace_target_.rule_id = rule_->id;
  trace_target_.num_stages = num_stages_;
  stage_open_.assign(static_cast<size_t>(num_stages_) + 1, false);
  for (size_t i = 0; i < rule_->head.args.size(); ++i) {
    if (rule_->head.args[i].agg != AggKind::kNone) {
      has_agg_ = true;
      agg_kind_ = rule_->head.args[i].agg;
      agg_expr_ = rule_->head.args[i].expr.get();
      agg_position_ = i;
      break;
    }
  }
}

void Strand::Trigger(const TupleRef& event) {
  // One context for the whole synchronous execution: virtual time cannot advance
  // mid-strand, so every branch of the join tree sees the same `now` it always did.
  EvalContext ctx{node_->Now(), &node_->rng(), &node_->addr()};
  Bindings binds;
  if (!MatchPredicate(*trigger_, *event, &binds, ctx)) {
    return;
  }
  node_->tracer().OnInput(trace_target_, event, ctx.now);
  Bindings trigger_binds = binds;  // for zero-count aggregate emission
  batch_.clear();
  RunOps(0, binds, ctx);
  if (has_agg_) {
    EmitAggregates(trigger_binds, ctx);
    batch_.clear();
  }
}

void Strand::RunOps(size_t op_index, Bindings& binds, EvalContext& ctx) {
  if (op_index == ops_.size()) {
    EmitLeaf(binds, ctx);
    return;
  }
  const StrandOp& op = ops_[op_index];
  switch (op.kind) {
    case StrandOp::Kind::kAssign: {
      size_t mark = binds.size();
      binds.Set(*op.var, EvalExpr(*op.expr, binds, ctx));
      RunOps(op_index + 1, binds, ctx);
      binds.TruncateTo(mark);
      return;
    }
    case StrandOp::Kind::kFilter: {
      if (EvalExpr(*op.expr, binds, ctx).Truthy()) {
        RunOps(op_index + 1, binds, ctx);
      }
      return;
    }
    case StrandOp::Kind::kNotExists: {
      bool exists = false;
      auto check = [&](const TupleRef& row) {
        if (MatchesExistentially(*op.pred, *row, binds, ctx)) {
          exists = true;
          return false;  // stop early: one witness suffices
        }
        return true;
      };
      if (op.use_index) {
        size_t rows =
            op.table->ForEachMatch(op.index_id, ProbeKey(op, binds, ctx), ctx.now, check);
        if (metrics_ != nullptr) {
          metrics_->join_probe_rows += rows;
        }
      } else {
        size_t rows = op.table->ForEachLive(ctx.now, check);
        if (metrics_ != nullptr) {
          metrics_->join_scan_rows += rows;
        }
      }
      if (!exists) {
        RunOps(op_index + 1, binds, ctx);
      }
      return;
    }
    case StrandOp::Kind::kJoin: {
      Tracer& tracer = node_->tracer();
      // This stage is seeking new input: signal completion of its previous execution
      // (paper §2.1.2 — the stage-completion signal is "the element seeks new input").
      if (stage_open_[static_cast<size_t>(op.stage)]) {
        tracer.OnStageComplete(trace_target_, op.stage);
        stage_open_[static_cast<size_t>(op.stage)] = false;
      }
      if (op.key_lookup) {
        // O(1) probe: the join binds the table's whole primary key.
        ValueList key_values;
        key_values.reserve(op.table->spec().key_fields.size());
        for (size_t pos : op.table->spec().key_fields) {
          key_values.push_back(EvalExpr(*op.pred->args[pos], binds, ctx));
        }
        TupleRef row = op.table->FindByKey(key_values, ctx.now);
        if (row != nullptr) {
          if (metrics_ != nullptr) {
            ++metrics_->join_probe_rows;
          }
          size_t mark = binds.size();
          if (MatchPredicate(*op.pred, *row, &binds, ctx)) {
            tracer.OnPrecondition(trace_target_, op.stage, row, ctx.now);
            RunOps(op_index + 1, binds, ctx);
          }
          binds.TruncateTo(mark);
        }
        stage_open_[static_cast<size_t>(op.stage)] = true;
        return;
      }
      auto visit = [&](const TupleRef& row) {
        size_t mark = binds.size();
        if (MatchPredicate(*op.pred, *row, &binds, ctx)) {
          tracer.OnPrecondition(trace_target_, op.stage, row, ctx.now);
          RunOps(op_index + 1, binds, ctx);
        }
        binds.TruncateTo(mark);
        return true;
      };
      if (op.use_index) {
        size_t rows =
            op.table->ForEachMatch(op.index_id, ProbeKey(op, binds, ctx), ctx.now, visit);
        if (metrics_ != nullptr) {
          metrics_->join_probe_rows += rows;
        }
      } else {
        size_t rows = op.table->ForEachLive(ctx.now, visit);
        if (metrics_ != nullptr) {
          metrics_->join_scan_rows += rows;
        }
      }
      stage_open_[static_cast<size_t>(op.stage)] = true;
      return;
    }
  }
}

void Strand::EmitLeaf(const Bindings& binds, EvalContext& ctx) {
  if (has_agg_) {
    batch_.push_back(binds);
    return;
  }
  EmitHeadTuple(binds, nullptr, ctx);
}

void Strand::EmitHeadTuple(const Bindings& binds, const Value* agg_result,
                           EvalContext& ctx) {
  const Head& head = rule_->head;
  ValueList fields;
  fields.reserve(head.args.size());
  uint64_t mask = 0;
  for (size_t i = 0; i < head.args.size(); ++i) {
    if (agg_result != nullptr && has_agg_ && i == agg_position_) {
      fields.push_back(*agg_result);
      mask |= (1ULL << i);
      continue;
    }
    const Expr* expr = head.args[i].expr.get();
    if (expr == nullptr) {
      fields.push_back(Value::Null());
      continue;
    }
    if (expr->kind == Expr::Kind::kVar && !binds.Has(expr->name)) {
      // Unbound head variable: null field; for delete rules this is a wildcard.
      fields.push_back(Value::Null());
      continue;
    }
    fields.push_back(EvalExpr(*expr, binds, ctx));
    mask |= (1ULL << i);
  }
  if (fields.empty() || fields[0].kind() != Value::Kind::kString) {
    ++node_->stats().dead_letters;
    return;
  }
  TupleRef out = Tuple::Make(head.name, std::move(fields));
  node_->tracer().OnOutput(trace_target_, out, ctx.now);
  node_->RouteTuple(out, rule_->is_delete, mask);
}

void Strand::EmitAggregates(const Bindings& trigger_binds, EvalContext& ctx) {
  const Head& head = rule_->head;
  GroupedAggregate groups(agg_kind_);
  for (const Bindings& binds : batch_) {
    Bindings local = binds;  // EvalExpr takes const ref; copy is cheap and safe
    ValueList key;
    key.reserve(head.args.size());
    bool key_ok = true;
    for (size_t i = 0; i < head.args.size(); ++i) {
      if (i == agg_position_) {
        continue;
      }
      const Expr* expr = head.args[i].expr.get();
      if (expr == nullptr || !VarsBound(*expr, local)) {
        key_ok = false;
        break;
      }
      key.push_back(EvalExpr(*expr, local, ctx));
    }
    if (!key_ok) {
      continue;
    }
    Value input = agg_expr_ != nullptr ? EvalExpr(*agg_expr_, local, ctx) : Value::Null();
    groups.Add(key, input);
  }
  if (groups.empty()) {
    // count/sum over an empty match set yield 0 — but only when the group key is
    // fully determined by the triggering event (paper usage: snapshot rule sr8).
    if (agg_kind_ != AggKind::kCount && agg_kind_ != AggKind::kSum) {
      return;
    }
    ValueList key;
    for (size_t i = 0; i < head.args.size(); ++i) {
      if (i == agg_position_) {
        continue;
      }
      const Expr* expr = head.args[i].expr.get();
      if (expr == nullptr || !VarsBound(*expr, trigger_binds)) {
        return;
      }
      key.push_back(EvalExpr(*expr, trigger_binds, ctx));
    }
    Value zero = Value::Int(0);
    ValueList fields;
    size_t k = 0;
    for (size_t i = 0; i < head.args.size(); ++i) {
      fields.push_back(i == agg_position_ ? zero : key[k++]);
    }
    if (fields.empty() || fields[0].kind() != Value::Kind::kString) {
      ++node_->stats().dead_letters;
      return;
    }
    TupleRef out = Tuple::Make(head.name, std::move(fields));
    node_->tracer().OnOutput(trace_target_, out, ctx.now);
    node_->RouteTuple(out, /*is_delete=*/false, ~0ULL);
    return;
  }
  groups.ForEach([&](const ValueList& key, const Value& result) {
    ValueList fields;
    size_t k = 0;
    for (size_t i = 0; i < head.args.size(); ++i) {
      fields.push_back(i == agg_position_ ? result : key[k++]);
    }
    if (fields.empty() || fields[0].kind() != Value::Kind::kString) {
      ++node_->stats().dead_letters;
      return;
    }
    TupleRef out = Tuple::Make(head.name, std::move(fields));
    node_->tracer().OnOutput(trace_target_, out, ctx.now);
    node_->RouteTuple(out, /*is_delete=*/false, ~0ULL);
  });
}

ContinuousAggRule::ContinuousAggRule(Node* node, const Rule* rule, std::vector<StrandOp> ops)
    : node_(node), rule_(rule), ops_(std::move(ops)) {
  for (size_t i = 0; i < rule_->head.args.size(); ++i) {
    if (rule_->head.args[i].agg != AggKind::kNone) {
      agg_kind_ = rule_->head.args[i].agg;
      agg_expr_ = rule_->head.args[i].expr.get();
      agg_position_ = i;
      break;
    }
  }
}

std::vector<std::string> ContinuousAggRule::BodyTableNames() const {
  std::vector<std::string> names;
  for (const StrandOp& op : ops_) {
    if (op.kind == StrandOp::Kind::kJoin) {
      names.push_back(op.pred->name);
    }
  }
  return names;
}

ValueList ContinuousAggRule::GroupKey(const Bindings& binds, bool* ok,
                                      EvalContext& ctx) {
  ValueList key;
  *ok = true;
  for (size_t i = 0; i < rule_->head.args.size(); ++i) {
    if (i == agg_position_) {
      continue;
    }
    const Expr* expr = rule_->head.args[i].expr.get();
    if (expr == nullptr || !VarsBound(*expr, binds)) {
      *ok = false;
      return key;
    }
    key.push_back(EvalExpr(*expr, binds, ctx));
  }
  return key;
}

void ContinuousAggRule::Recurse(size_t op_index, Bindings& binds, GroupedAggregate* groups,
                                EvalContext& ctx) {
  if (op_index == ops_.size()) {
    bool ok = false;
    ValueList key = GroupKey(binds, &ok, ctx);
    if (ok) {
      Value input = agg_expr_ != nullptr ? EvalExpr(*agg_expr_, binds, ctx) : Value::Null();
      groups->Add(key, input);
    }
    return;
  }
  const StrandOp& op = ops_[op_index];
  switch (op.kind) {
    case StrandOp::Kind::kAssign: {
      size_t mark = binds.size();
      binds.Set(*op.var, EvalExpr(*op.expr, binds, ctx));
      Recurse(op_index + 1, binds, groups, ctx);
      binds.TruncateTo(mark);
      return;
    }
    case StrandOp::Kind::kFilter: {
      if (EvalExpr(*op.expr, binds, ctx).Truthy()) {
        Recurse(op_index + 1, binds, groups, ctx);
      }
      return;
    }
    case StrandOp::Kind::kNotExists: {
      bool exists = false;
      auto check = [&](const TupleRef& row) {
        if (MatchesExistentially(*op.pred, *row, binds, ctx)) {
          exists = true;
          return false;
        }
        return true;
      };
      if (op.use_index) {
        size_t rows =
            op.table->ForEachMatch(op.index_id, ProbeKey(op, binds, ctx), ctx.now, check);
        if (metrics_ != nullptr) {
          metrics_->join_probe_rows += rows;
        }
      } else {
        size_t rows = op.table->ForEachLive(ctx.now, check);
        if (metrics_ != nullptr) {
          metrics_->join_scan_rows += rows;
        }
      }
      if (!exists) {
        Recurse(op_index + 1, binds, groups, ctx);
      }
      return;
    }
    case StrandOp::Kind::kJoin: {
      if (op.key_lookup) {
        ValueList key_values;
        key_values.reserve(op.table->spec().key_fields.size());
        for (size_t pos : op.table->spec().key_fields) {
          key_values.push_back(EvalExpr(*op.pred->args[pos], binds, ctx));
        }
        TupleRef row = op.table->FindByKey(key_values, ctx.now);
        if (row != nullptr) {
          if (metrics_ != nullptr) {
            ++metrics_->join_probe_rows;
          }
          size_t mark = binds.size();
          if (MatchPredicate(*op.pred, *row, &binds, ctx)) {
            Recurse(op_index + 1, binds, groups, ctx);
          }
          binds.TruncateTo(mark);
        }
        return;
      }
      auto visit = [&](const TupleRef& row) {
        size_t mark = binds.size();
        if (MatchPredicate(*op.pred, *row, &binds, ctx)) {
          Recurse(op_index + 1, binds, groups, ctx);
        }
        binds.TruncateTo(mark);
        return true;
      };
      if (op.use_index) {
        size_t rows =
            op.table->ForEachMatch(op.index_id, ProbeKey(op, binds, ctx), ctx.now, visit);
        if (metrics_ != nullptr) {
          metrics_->join_probe_rows += rows;
        }
      } else {
        size_t rows = op.table->ForEachLive(ctx.now, visit);
        if (metrics_ != nullptr) {
          metrics_->join_scan_rows += rows;
        }
      }
      return;
    }
  }
}

void ContinuousAggRule::Reevaluate() {
  ++node_->stats().agg_reevals;
  EvalContext ctx{node_->Now(), &node_->rng(), &node_->addr()};
  GroupedAggregate groups(agg_kind_);
  Bindings binds;
  Recurse(0, binds, &groups, ctx);

  auto emit = [&](const ValueList& key, const Value& result) {
    ValueList fields;
    size_t k = 0;
    for (size_t i = 0; i < rule_->head.args.size(); ++i) {
      fields.push_back(i == agg_position_ ? result : key[k++]);
    }
    if (fields.empty() || fields[0].kind() != Value::Kind::kString) {
      ++node_->stats().dead_letters;
      return;
    }
    node_->RouteTuple(Tuple::Make(rule_->head.name, std::move(fields)), false, ~0ULL);
  };

  // Emit new/changed groups.
  std::map<std::string, std::pair<ValueList, Value>> current;
  groups.ForEach([&](const ValueList& key, const Value& result) {
    std::string ks;
    for (const Value& v : key) {
      ks += static_cast<char>(v.kind());
      ks += v.ToString();
      ks += '\x1f';
    }
    current.emplace(ks, std::make_pair(key, result));
  });
  for (const auto& [ks, kv] : current) {
    auto prev = last_emitted_.find(ks);
    if (prev == last_emitted_.end() || !(prev->second.second == kv.second)) {
      emit(kv.first, kv.second);
    }
  }
  // Vanished groups: a materialized result row is retracted (otherwise a `delete` rule
  // clearing the underlying table would see its cleanup resurrected as a zero row); an
  // unmaterialized count head emits a final zero event.
  for (const auto& [ks, kv] : last_emitted_) {
    if (current.count(ks) != 0) {
      continue;
    }
    if (node_->catalog().IsMaterialized(rule_->head.name)) {
      ValueList fields;
      uint64_t mask = 0;
      size_t k = 0;
      for (size_t i = 0; i < rule_->head.args.size(); ++i) {
        if (i == agg_position_) {
          fields.push_back(Value::Null());  // wildcard
        } else {
          fields.push_back(kv.first[k++]);
          mask |= (1ULL << i);
        }
      }
      if (!fields.empty() && fields[0].kind() == Value::Kind::kString) {
        node_->RouteTuple(Tuple::Make(rule_->head.name, std::move(fields)),
                          /*is_delete=*/true, mask);
      }
    } else if (agg_kind_ == AggKind::kCount) {
      emit(kv.first, Value::Int(0));
    }
  }
  last_emitted_ = std::move(current);
}

}  // namespace p2
