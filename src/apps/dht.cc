#include "src/apps/dht.h"

namespace p2 {

std::string DhtProgram(const DhtConfig& config) {
  std::string program = R"OLG(
materialize(dhtStore, tStore, 100000, keys(1, 2)).
materialize(pendingPut, tPending, 1000, keys(1, 2)).
materialize(pendingGet, tPending, 1000, keys(1, 2)).

/* ---- put: resolve the key's owner via a Chord lookup, then store there ---- */
dp1 dhtPutStart@NAddr(E, K, V, R) :- dhtPut@NAddr(K, V, R), E := f_rand().
dp2 pendingPut@NAddr(E, K, V, R) :- dhtPutStart@NAddr(E, K, V, R).
dp3 lookup@NAddr(KID, NAddr, E) :- dhtPutStart@NAddr(E, K, V, R), KID := f_hash(K).
dp4 dhtStoreReq@OwnerAddr(K, V, NAddr, R) :- lookupResults@NAddr(KID, SID,
    OwnerAddr, E, RespAddr), pendingPut@NAddr(E, K, V, R).
dp5 dhtStore@NAddr(KID, K, V) :- dhtStoreReq@NAddr(K, V, Src, R), KID := f_hash(K).
dp6 dhtPutAck@Src(K, R, NAddr) :- dhtStoreReq@NAddr(K, V, Src, R).
dp7 delete pendingPut@NAddr(E, K, V, R) :- dhtPutAck@NAddr(K, R, Owner),
    pendingPut@NAddr(E, K, V, R).

/* ---- get: resolve the owner the same way, answer hit or miss ---- */
dg1 dhtGetStart@NAddr(E, K, R) :- dhtGet@NAddr(K, R), E := f_rand().
dg2 pendingGet@NAddr(E, K, R) :- dhtGetStart@NAddr(E, K, R).
dg3 lookup@NAddr(KID, NAddr, E) :- dhtGetStart@NAddr(E, K, R), KID := f_hash(K).
dg4 dhtFetch@OwnerAddr(K, NAddr, R) :- lookupResults@NAddr(KID, SID, OwnerAddr, E,
    RespAddr), pendingGet@NAddr(E, K, R).
dg5 dhtGetResp@Src(K, V, R, true) :- dhtFetch@NAddr(K, Src, R),
    dhtStore@NAddr(KID, K, V).
dg6 dhtGetResp@Src(K, "", R, false) :- dhtFetch@NAddr(K, Src, R),
    not dhtStore@NAddr(KID2, K, V2).
dg7 delete pendingGet@NAddr(E, K, R) :- dhtGetResp@NAddr(K, V, R, Found),
    pendingGet@NAddr(E, K, R).
)OLG";
  if (config.replicate) {
    program += R"OLG(
/* ---- replication: every stored pair is copied to the owner's successor, which is
   exactly the node that inherits the key's ID range if the owner fails ---- */
dr1 dhtReplica@SAddr(K, V) :- dhtStoreReq@NAddr(K, V, Src, R),
    bestSucc@NAddr(SID, SAddr), SAddr != NAddr.
dr2 dhtStore@NAddr(KID, K, V) :- dhtReplica@NAddr(K, V), KID := f_hash(K).
)OLG";
  }
  return program;
}

bool InstallDht(Node* node, const DhtConfig& config, std::string* error) {
  ParamMap params;
  params["tStore"] = Value::Double(config.store_lifetime);
  params["tPending"] = Value::Double(config.pending_lifetime);
  return node->LoadProgram(DhtProgram(config), params, error);
}

void DhtPut(Node* node, const std::string& key, const std::string& value,
            uint64_t req_id) {
  node->InjectEvent(Tuple::Make("dhtPut", {Value::Str(node->addr()), Value::Str(key),
                                           Value::Str(value), Value::Id(req_id)}));
}

void DhtGet(Node* node, const std::string& key, uint64_t req_id) {
  node->InjectEvent(Tuple::Make(
      "dhtGet", {Value::Str(node->addr()), Value::Str(key), Value::Id(req_id)}));
}

size_t DhtStoredPairs(Node* node) { return node->TableContents("dhtStore").size(); }

}  // namespace p2
