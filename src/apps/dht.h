// A distributed hash table (put/get) application over P2-Chord — the paper's "hash
// table metaphor" (§3.1) as an actual application layer: "you get what you put in, as
// if the system were implemented with a centralized hash table."
//
// Keys are strings hashed onto the identifier ring (f_hash); a put routes the value to
// the key's owner via a Chord lookup and optionally replicates it to the owner's
// successor (so a single owner crash loses nothing once the ring heals: the new owner
// of the key's ID range IS the replica). Gets route the same way and answer hit or
// miss.
//
// Tables:
//   dhtStore(N, KeyId, Key, Value)   stored pairs (and replicas)
//   pendingPut / pendingGet          requests awaiting owner resolution
// Events (host API):
//   dhtPut(N, Key, Value, ReqId) -> dhtPutAck(Requester, Key, ReqId, OwnerAddr)
//   dhtGet(N, Key, ReqId)        -> dhtGetResp(Requester, Key, Value, ReqId, Found)

#ifndef SRC_APPS_DHT_H_
#define SRC_APPS_DHT_H_

#include <cstdint>
#include <string>

#include "src/net/node.h"

namespace p2 {

struct DhtConfig {
  double store_lifetime = 600.0;   // stored-pair TTL (re-put refreshes)
  double pending_lifetime = 30.0;  // request-state TTL (unanswered requests expire)
  bool replicate = true;           // copy each stored pair to the owner's successor
};

// The OverLog program text.
std::string DhtProgram(const DhtConfig& config);

// Loads the DHT program on `node` (Chord must already be installed there).
bool InstallDht(Node* node, const DhtConfig& config, std::string* error);

// Issues a put/get at `node`. Responses arrive as dhtPutAck / dhtGetResp events.
void DhtPut(Node* node, const std::string& key, const std::string& value,
            uint64_t req_id);
void DhtGet(Node* node, const std::string& key, uint64_t req_id);

// Host-side convenience: number of pairs (including replicas) stored at `node`.
size_t DhtStoredPairs(Node* node);

}  // namespace p2

#endif  // SRC_APPS_DHT_H_
