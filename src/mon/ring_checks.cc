#include "src/mon/ring_checks.h"

namespace p2 {

std::string RingCheckProgram(const RingCheckConfig& config) {
  std::string program;
  if (config.active) {
    // Paper rules rp1-rp3 verbatim (modulo the respBestSucc payload carrying the
    // responder's address so rp3 can confirm it is still the node's predecessor).
    program += R"OLG(
rp1 reqBestSucc@PAddr(NAddr) :- periodic@NAddr(E, tProbe), pred@NAddr(PID, PAddr),
    PAddr != "-".
rp2 respBestSucc@ReqAddr(NAddr, SAddr) :- reqBestSucc@NAddr(ReqAddr),
    bestSucc@NAddr(SID, SAddr).
rp3 inconsistentPred@NAddr(PAddr, Successor) :- respBestSucc@NAddr(PAddr, Successor),
    pred@NAddr(PID, PAddr), Successor != NAddr.
)OLG";
  }
  if (config.passive) {
    // Paper rule rp4: piggy-back on Chord's own stabilization traffic.
    program += R"OLG(
rp4 inconsistentPred@NAddr(PAddr, SomeAddr) :- stabilizeRequest@NAddr(SomeID, SomeAddr),
    pred@NAddr(PID, PAddr), SomeAddr != PAddr, SomeAddr != NAddr.
)OLG";
  }
  return program;
}

bool InstallRingChecks(Node* node, const RingCheckConfig& config, std::string* error) {
  ParamMap params;
  params["tProbe"] = Value::Double(config.probe_period);
  return node->LoadProgram(RingCheckProgram(config), params, error);
}

}  // namespace p2
