#include "src/mon/consistency.h"

namespace p2 {

std::string ConsistencyProgram(const ConsistencyConfig& config) {
  // Tables as in the paper (§3.1.4) with primary keys widened to hold one row per
  // lookup/cluster rather than one per node (the listing's keys(1) is a typo: cs3/cs5
  // store many rows per probe).
  std::string program = R"OLG(
materialize(conLookupTable, tLife, 1000, keys(1, 3)).
materialize(conRespTable, tLife, 1000, keys(1, 3)).
materialize(respCluster, tLife, 1000, keys(1, 2, 3)).
materialize(maxCluster, tLife, 1000, keys(1, 2)).
materialize(lookupCluster, tLife, 1000, keys(1, 2)).

cs1 conProbe@NAddr(ProbeID, K, T) :- periodic@NAddr(ProbeID, tProbePeriod),
    K := f_randID(), T := f_now().
cs2 conLookup@NAddr(ProbeID, K, FAddr, ReqID, T) :- conProbe@NAddr(ProbeID, K, T),
    uniqueFinger@NAddr(FAddr, FID), ReqID := f_rand().
cs3 conLookupTable@NAddr(ProbeID, ReqID, T) :- conLookup@NAddr(ProbeID, K, SrcAddr,
    ReqID, T).
)OLG";
  if (!config.snapshot_mode) {
    program += R"OLG(
cs4 lookup@SrcAddr(K, NAddr, ReqID) :- conLookup@NAddr(ProbeID, K, SrcAddr, ReqID, T).
cs5 conRespTable@NAddr(ProbeID, ReqID, SAddr) :- lookupResults@NAddr(K, SID, SAddr,
    ReqID, Responder), conLookupTable@NAddr(ProbeID, ReqID, T).
)OLG";
  } else {
    // Paper §3.3: probes run over the consistent snapshot `mysnap`; regular lookups
    // continue to use the live rules at the same time.
    program += R"OLG(
cs4s sLookup@SrcAddr(mysnap, K, NAddr, ReqID) :- conLookup@NAddr(ProbeID, K, SrcAddr,
     ReqID, T).
cs5s conRespTable@NAddr(ProbeID, ReqID, SAddr) :- sLookupResults@NAddr(SnapID, K, SID,
     SAddr, ReqID, Responder), conLookupTable@NAddr(ProbeID, ReqID, T).
)OLG";
  }
  program += R"OLG(
cs6 respCluster@NAddr(ProbeID, SAddr, count<*>) :- conRespTable@NAddr(ProbeID, ReqID,
    SAddr).
cs7 maxCluster@NAddr(ProbeID, max<Count>) :- respCluster@NAddr(ProbeID, SAddr, Count).
cs8 lookupCluster@NAddr(ProbeID, T, count<*>) :- conLookupTable@NAddr(ProbeID, ReqID,
    T).
cs9 consistency@NAddr(ProbeID, RespCount / LookupCount) :- periodic@NAddr(E,
    tTallyPeriod), lookupCluster@NAddr(ProbeID, T, LookupCount),
    T < f_now() - tTallyAge, maxCluster@NAddr(ProbeID, RespCount).
cs10 delete lookupCluster@NAddr(ProbeID, T, Count) :- consistency@NAddr(ProbeID,
     Consistency).
cs11 delete conLookupTable@NAddr(ProbeID, ReqID, T) :- consistency@NAddr(ProbeID,
     Consistency), conLookupTable@NAddr(ProbeID, ReqID, T).
cs12 consAlarm@NAddr(ProbeID) :- consistency@NAddr(ProbeID, Cons), Cons < consAlarmAt.
)OLG";
  return program;
}

bool InstallConsistencyProbes(Node* node, const ConsistencyConfig& config,
                              std::string* error) {
  ParamMap params;
  params["tProbePeriod"] = Value::Double(config.probe_period);
  params["tTallyPeriod"] = Value::Double(config.tally_period);
  params["tTallyAge"] = Value::Double(config.tally_age);
  params["tLife"] = Value::Double(config.table_lifetime);
  params["consAlarmAt"] = Value::Double(config.alarm_threshold);
  if (config.snapshot_mode) {
    params["mysnap"] = Value::Int(config.snapshot_id);
  }
  return node->LoadProgram(ConsistencyProgram(config), params, error);
}

}  // namespace p2
