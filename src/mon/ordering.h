// Ring ID-ordering detectors (paper §3.1.2, rules ri1–ri6).
//
// Opportunistic check (ri1): every lookup response whose result ID falls strictly
// between the local predecessor and successor exposes a node the local node should
// have known about — a `closerID` event.
//
// Token traversal (ri2–ri6): starting from an `orderingEvent`, a token walks the ring
// along best-successor links counting ID wrap-arounds; a completed traversal with a
// wrap count different from one reports an `orderingProblem` to the initiator.

#ifndef SRC_MON_ORDERING_H_
#define SRC_MON_ORDERING_H_

#include <string>

#include "src/net/node.h"

namespace p2 {

// The OverLog text (no parameters).
std::string OrderingProgram();

// Installs the detectors on `node`. Subscribe to `closerID` / `orderingProblem`.
bool InstallOrderingChecks(Node* node, std::string* error);

// Starts a ring traversal at `node` with traversal id `traversal_id`.
void StartRingTraversal(Node* node, uint64_t traversal_id);

}  // namespace p2

#endif  // SRC_MON_ORDERING_H_
