// Ring well-formedness detectors (paper §3.1.1, rules rp1–rp4).
//
// Active probing: every tProbe seconds a node asks its predecessor for the
// predecessor's best successor; if the answer is not the asking node, the ring link is
// inconsistent and an `inconsistentPred` event is raised locally.
//
// Passive check: every incoming stabilizeRequest is supposed to come from the node's
// immediate predecessor; a mismatch raises `inconsistentPred` without generating any
// extra messages (but detection happens only at stabilization rate).

#ifndef SRC_MON_RING_CHECKS_H_
#define SRC_MON_RING_CHECKS_H_

#include <string>

#include "src/net/node.h"

namespace p2 {

struct RingCheckConfig {
  double probe_period = 15.0;  // tProbe
  bool active = true;          // install rp1-rp3
  bool passive = true;         // install rp4
};

// The OverLog text (parameter: tProbe).
std::string RingCheckProgram(const RingCheckConfig& config);

// Installs the detectors on `node`. Alarms arrive as `inconsistentPred` events
// (subscribe via Node::SubscribeEvent).
bool InstallRingChecks(Node* node, const RingCheckConfig& config, std::string* error);

}  // namespace p2

#endif  // SRC_MON_RING_CHECKS_H_
