#include "src/mon/snapshot.h"

#include "src/common/strings.h"
#include "src/net/wire.h"

namespace p2 {

namespace {

// The Chandy-Lamport core: overlay-agnostic — it needs only the pingNode/pingReq
// liveness vocabulary for links and markers.
const char kSnapshotCore[] = R"OLG(
/* ---------------------------------------------------- incoming-link discovery */
materialize(backPointer, 30, 200, keys(1, 2)).
materialize(numBackPointers, infinity, 1, keys(1)).

bp1 backPointer@NAddr(RemoteAddr) :- pingReq@NAddr(RemoteAddr).
bp2 numBackPointers@NAddr(count<*>) :- backPointer@NAddr(RemoteAddr).

/* ------------------------------------------------------------- snapshot state */
materialize(snapState, tState, 1000, keys(1, 2)).
materialize(currentSnap, infinity, 1, keys(1)).
/* Channel bookkeeping is only meaningful until its snapshot completes (markers
   arrive within a network round-trip); a short lifetime keeps the done-count
   recomputation from rescanning the full retention window of past snapshots. */
materialize(channelState, tChan, 2000, keys(1, 2)).
materialize(doneChannels, tChan, 1000, keys(1, 2)).
materialize(channelDumpStab, tState, 2000, keys(1, 2, 5)).
materialize(channelDumpNotify, tState, 2000, keys(1, 2, 5)).
materialize(channelDumpLookupRes, tState, 2000, keys(1, 2, 5)).

/* Record own state and flood markers when a snapshot begins on this node. */
sr2 snapState@NAddr(I, "Snapping") :- snap@NAddr(I).
sr3 currentSnap@NAddr(I) :- snap@NAddr(I), currentSnap@NAddr(J), I > J.
sr7 marker@RemoteAddr(NAddr, I) :- snap@NAddr(I), pingNode@NAddr(RemoteAddr).

/* Marker handling: a first marker starts the snapshot and channel recording on every
   other incoming link; any marker closes its sender's channel. */
sr8 haveSnap@NAddr(SrcAddr, I, count<*>) :- snapState@NAddr(I, State),
    marker@NAddr(SrcAddr, I).
sr9 snap@NAddr(I) :- haveSnap@NAddr(Src, I, 0).
sr10 channelState@NAddr(Remote + I, Remote, I, "Start") :- haveSnap@NAddr(Src, I, 0),
     backPointer@NAddr(Remote), Remote != Src.
sr11 channelState@NAddr(Src + I, Src, I, "Done") :- haveSnap@NAddr(Src, I, C),
     backPointer@NAddr(Src).

/* Termination: the snapshot is done when every incoming channel's marker arrived. */
sr12 doneChannels@NAddr(I, count<*>) :- channelState@NAddr(Key, Src, I, "Done").
sr13 snapState@NAddr(I, "Done") :- doneChannels@NAddr(I, C),
     snapState@NAddr(I, "Snapping"), numBackPointers@NAddr(C).

/* Record when this node began snapping I (sr9/sr1b fire snap once per node per
   snapshot, so the row is written once). */
materialize(snapStarted, tState, 1000, keys(1, 2)).
sra0 snapStarted@NAddr(I, T) :- snap@NAddr(I), T := f_now().

/* Channel recording (paper sr15/sr16): messages arriving on channels still being
   recorded, one dump table per message type that carries its sender. */
sr15a channelDumpStab@NAddr(Key, I, SomeAddr, T) :- stabilizeRequest@NAddr(SomeID,
      SomeAddr), channelState@NAddr(Key, SomeAddr, I, "Start"), T := f_now().
sr15b channelDumpNotify@NAddr(Key, I, PAddr2, T) :- notify@NAddr(PID2, PAddr2),
      channelState@NAddr(Key, PAddr2, I, "Start"), T := f_now().
sr16 channelDumpLookupRes@NAddr(Key, I, K, E, T) :- lookupResults@NAddr(K, SID, SAddr,
     E, RespAddr), channelState@NAddr(Key, RespAddr, I, "Start"), T := f_now().

)OLG";

// Chord-specific captures + snapshot lookups (paper sr4-sr6, sr14, l1s-l3s).
const char kChordSnapshotPart[] = R"OLG(
materialize(snapBestSucc, tState, 1000, keys(1, 2)).
materialize(snapFingers, tState, 2000, keys(1, 2, 3)).
materialize(snapPred, tState, 1000, keys(1, 2)).

sr4 snapBestSucc@NAddr(I, SAddr, SID) :- snap@NAddr(I), bestSucc@NAddr(SID, SAddr).
sr5 snapFingers@NAddr(I, FPos, FAddr, FID) :- snap@NAddr(I),
    finger@NAddr(FPos, FID, FAddr).
sr6 snapPred@NAddr(I, PAddr, PID) :- snap@NAddr(I), pred@NAddr(PID, PAddr).

/* A snapshot lookup from the future acts as a marker (paper sr14). */
sr14 snap@NAddr(SrcSnapID) :- sLookupResults@NAddr(SrcSnapID, K, SID, SAddr, E,
     RespAddr), currentSnap@NAddr(MySnapID), SrcSnapID > MySnapID.

/* --------------------------- lookups over a snapshot (paper l1s-l3s, §3.3) */
l1s sLookupResults@RAddr(SnapID, K, SID, SAddr, E, NAddr) :- node@NAddr(NID),
    sLookup@NAddr(SnapID, K, RAddr, E), snapBestSucc@NAddr(SnapID, SAddr, SID),
    K in (NID, SID].
l2s sBestLookupDist@NAddr(SnapID, K, RAddr, E, min<D>) :- node@NAddr(NID),
    sLookup@NAddr(SnapID, K, RAddr, E), snapFingers@NAddr(SnapID, FPos, FAddr, FID),
    D := K - FID - 1, FID in (NID, K).
l3s sLookup@FAddr(SnapID, K, RAddr, E) :- node@NAddr(NID),
    sBestLookupDist@NAddr(SnapID, K, RAddr, E, D),
    snapFingers@NAddr(SnapID, FPos, FAddr, FID), D == K - FID - 1, FID in (NID, K).
)OLG";

// Abort machinery (docs/ROBUSTNESS.md): instead of hanging forever in "Snapping"
// when a marker is lost for good, a snapshot that outlives its timeout — or whose
// node sees a reliable channel fail while snapping — flips to "Aborted" with a
// queryable snapDiag row naming the reason.
const char kSnapshotAbortPart[] = R"OLG(
materialize(snapDiag, tState, 1000, keys(1, 2)).

/* Timeout: still Snapping well past the local start time. */
sra1 snapDiag@NAddr(I, "timeout", T2) :- periodic@NAddr(E, tSnapCheck),
     snapState@NAddr(I, "Snapping"), snapStarted@NAddr(I, T),
     T < f_now() - tSnapTimeout, T2 := f_now().

/* A failed reliable channel while Snapping dooms the marker flood immediately. */
sra2 snapDiag@NAddr(I, "chanFailed", T) :- chanFailed@NAddr(Dst, T0),
     snapState@NAddr(I, "Snapping"), T := f_now().

sra3 snapState@NAddr(I, "Aborted") :- snapDiag@NAddr(I, Reason, T).
)OLG";

}  // namespace

std::string SnapshotProgram(const SnapshotConfig& config) {
  std::string program = kSnapshotCore;
  if (config.chord_state) {
    program += kChordSnapshotPart;
  }
  // Generated capture rules: one snapCap_<t> table + rule per extra capture.
  for (size_t c = 0; c < config.extra_captures.size(); ++c) {
    const SnapshotCapture& cap = config.extra_captures[c];
    std::string args;
    for (int i = 0; i < cap.arity; ++i) {
      args += ", F" + std::to_string(i);
    }
    program += "materialize(snapCap_" + cap.table + ", tState, 10000).\n";
    program += "srcap" + std::to_string(c) + " snapCap_" + cap.table +
               "@NAddr(I" + args + ") :- snap@NAddr(I), " + cap.table + "@NAddr(" +
               (cap.arity > 0 ? args.substr(2) : std::string()) + ").\n";
  }
  return program;
}

std::string SnapshotInitiatorProgram() {
  return R"OLG(
sr1 snapInitiated@NAddr(I + 1) :- periodic@NAddr(E, tSnapFreq), currentSnap@NAddr(I).
sr1b snap@NAddr(I) :- snapInitiated@NAddr(I).
sr1c channelState@NAddr(Remote + I, Remote, I, "Start") :- snapInitiated@NAddr(I),
     backPointer@NAddr(Remote).
)OLG";
}

std::string SnapshotAbortProgram() { return kSnapshotAbortPart; }

bool InstallSnapshot(Node* node, const SnapshotConfig& config, std::string* error) {
  ParamMap params;
  params["tState"] = Value::Double(config.state_lifetime);
  params["tChan"] = Value::Double(config.channel_lifetime);
  if (!node->LoadProgram(SnapshotProgram(config), params, error)) {
    return false;
  }
  if (config.initiator) {
    ParamMap init_params;
    init_params["tSnapFreq"] = Value::Double(config.snap_period);
    if (!node->LoadProgram(SnapshotInitiatorProgram(), init_params, error)) {
      return false;
    }
  }
  if (config.abort_timeout > 0) {
    ParamMap abort_params;
    abort_params["tState"] = Value::Double(config.state_lifetime);
    abort_params["tSnapCheck"] = Value::Double(config.abort_check_period);
    abort_params["tSnapTimeout"] = Value::Double(config.abort_timeout);
    if (!node->LoadProgram(SnapshotAbortProgram(), abort_params, error)) {
      return false;
    }
  }
  // The Chandy-Lamport marker flood assumes reliable FIFO channels (the paper runs
  // it over such a transport); snapshot lookups likewise traverse the frozen ring
  // hop by hop. Mark them for the reliable class — a no-op when the node's
  // reliable_transport option is off (the fault-matrix ablation).
  node->MarkReliable("marker");
  if (config.chord_state) {
    node->MarkReliable("sLookup");
    node->MarkReliable("sLookupResults");
  }
  node->InjectEvent(
      Tuple::Make("currentSnap", {Value::Str(node->addr()), Value::Int(0)}));
  return true;
}

int64_t LatestDoneSnapshot(Node* node) {
  int64_t best = 0;
  for (const TupleRef& t : node->TableContents("snapState")) {
    if (t->arity() >= 3 && t->field(2).kind() == Value::Kind::kString &&
        t->field(2).AsString() == "Done" && t->field(1).is_numeric()) {
      best = std::max(best, t->field(1).ToInt());
    }
  }
  return best;
}

void IssueSnapshotLookup(Node* node, int64_t snap_id, uint64_t key, uint64_t req_id) {
  node->InjectEvent(Tuple::Make(
      "sLookup", {Value::Str(node->addr()), Value::Int(snap_id), Value::Id(key),
                  Value::Str(node->addr()), Value::Id(req_id)}));
}

std::string ExportSnapshot(Node* node, int64_t snap_id) {
  std::string out;
  double now = node->Now();
  for (Table* table : node->catalog().AllTables()) {
    if (!StartsWith(table->name(), "snap")) {
      continue;
    }
    table->ForEachLive(now, [&](const TupleRef& row) {
      // Field 1 of every snapshot table is the snapshot ID.
      if (row->arity() >= 2 && row->field(1).is_numeric() &&
          row->field(1).ToInt() == snap_id) {
        EncodeTuple(*row, &out);
      }
      return true;
    });
  }
  return out;
}

bool ImportSnapshot(Node* node, const std::string& bytes, std::string* error) {
  size_t pos = 0;
  double now = node->Now();
  while (pos < bytes.size()) {
    TupleRef row;
    if (!DecodeTuple(bytes, &pos, &row)) {
      *error = "corrupt snapshot dump";
      return false;
    }
    Table* table = node->catalog().Get(row->name());
    if (table == nullptr) {
      // The analyst node may lack a capture table the dump mentions: create it with
      // an archival spec (no expiry, whole-tuple key).
      TableSpec spec;
      spec.name = row->name();
      node->catalog().CreateTable(spec);
      table = node->catalog().Get(row->name());
    }
    // Direct insert: imported rows keep their original addresses as plain data and
    // must not be routed anywhere.
    table->Insert(row, now);
  }
  return true;
}

}  // namespace p2
