#include "src/mon/oscillation.h"

namespace p2 {

std::string OscillationProgram(const OscillationConfig& config) {
  std::string program = R"OLG(
materialize(oscill, tWindow, infinity, keys(2, 3)).

os1 oscill@NAddr(SAddr, T) :- faultyNode@NAddr(SAddr, T1), sendPred@NAddr(SID, SAddr),
    T := f_now().
os2 oscill@NAddr(SAddr, T) :- faultyNode@NAddr(SAddr, T1), returnSucc@NAddr(SID, SAddr),
    T := f_now().
os3 countOscill@NAddr(OscillAddr, count<*>) :- periodic@NAddr(E, tCheck),
    oscill@NAddr(OscillAddr, Time).
os4 repeatOscill@NAddr(OscillAddr) :- countOscill@NAddr(OscillAddr, Count),
    Count >= repeatThreshold.
)OLG";
  if (config.collaborative) {
    program += R"OLG(
materialize(nbrOscill, tWindow, infinity, keys(2, 3)).

os5 nbrOscill@NAddr(OscillAddr, NAddr) :- repeatOscill@NAddr(OscillAddr).
os6 nbrOscill@SAddr(OscillAddr, NAddr) :- repeatOscill@NAddr(OscillAddr),
    succ@NAddr(SID, SAddr).
os7 nbrOscill@PAddr(OscillAddr, NAddr) :- repeatOscill@NAddr(OscillAddr),
    pred@NAddr(PID, PAddr), PAddr != "-".
os8 nbrOscillCount@NAddr(OscillAddr, count<*>) :- nbrOscill@NAddr(OscillAddr,
    ReporterAddr).
os9 chaotic@NAddr(OscillAddr) :- nbrOscillCount@NAddr(OscillAddr, Count),
    Count > chaoticThreshold.
)OLG";
  }
  return program;
}

bool InstallOscillationChecks(Node* node, const OscillationConfig& config,
                              std::string* error) {
  ParamMap params;
  params["tWindow"] = Value::Double(config.history_window);
  params["tCheck"] = Value::Double(config.check_period);
  params["repeatThreshold"] = Value::Int(config.repeat_threshold);
  params["chaoticThreshold"] = Value::Int(config.chaotic_threshold);
  return node->LoadProgram(OscillationProgram(config), params, error);
}

}  // namespace p2
