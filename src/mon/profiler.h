// Execution profiler (paper §3.2, rules ep1–ep6).
//
// Given the ID of a tuple (typically a lookup response), walks the execution trace
// backwards through the ruleExec / tupleTable tables — across nodes — splitting the
// end-to-end latency into:
//   RuleT   time spent inside rule strands,
//   NetT    time spent crossing the network between rules,
//   LocalT  time spent queued between rules on the same node.
// The walk ends when it reaches `target_rule` (the rule that originated the request;
// "cs2" for consistency probes) and emits a `report(ID, RuleT, NetT, LocalT)` event at
// the node where the walk concludes.
//
// Paper-listing fix (documented in DESIGN.md): ep2 forwards the origin-local tuple ID
// (SrcTID) when hopping to the origin node; the listing forwarded the consumer-local ID,
// which cannot match the origin's ruleExec rows.

#ifndef SRC_MON_PROFILER_H_
#define SRC_MON_PROFILER_H_

#include <string>

#include "src/net/node.h"

namespace p2 {

struct ProfilerConfig {
  // Rule id at which backward traversal stops (the request originator).
  std::string target_rule = "cs2";
};

std::string ProfilerProgram();

// Installs the traversal rules. Subscribe to `report` events.
bool InstallProfiler(Node* node, const ProfilerConfig& config, std::string* error);

// Starts a backward trace at `node` from `tuple` (which must have been observed there),
// treating `received_at` as the moment the tuple completed its journey.
void StartTrace(Node* node, const TupleRef& tuple, double received_at);

}  // namespace p2

#endif  // SRC_MON_PROFILER_H_
