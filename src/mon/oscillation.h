// State-oscillation detectors (paper §3.1.3, rules os1–os9).
//
// Detects the "recycled dead neighbor" pattern: a node removes an unresponsive
// successor, then gossip re-inserts it, repeatedly.
//  * Single oscillation (os1/os2): a recently deceased neighbor arrives in a
//    sendPred/returnSucc gossip message — an `oscill` record.
//  * Repeat oscillation (os3/os4): >= `repeat_threshold` oscillations of the same node
//    within the history window — a `repeatOscill` event.
//  * Collaborative detection (os5–os9): neighbors share repeat-oscillator reports; a
//    node seen oscillating by > `chaotic_threshold` neighbors is declared `chaotic`.

#ifndef SRC_MON_OSCILLATION_H_
#define SRC_MON_OSCILLATION_H_

#include <string>

#include "src/net/node.h"

namespace p2 {

struct OscillationConfig {
  double history_window = 120.0;   // oscill / nbrOscill table lifetime
  double check_period = 60.0;      // os3 counting period
  int repeat_threshold = 3;        // os4
  int chaotic_threshold = 3;       // os9 (strictly more than this many reporters)
  bool collaborative = true;       // install os5-os9
};

std::string OscillationProgram(const OscillationConfig& config);

// Installs the detectors. Subscribe to `oscill`-table changes via `repeatOscill` /
// `chaotic` events.
bool InstallOscillationChecks(Node* node, const OscillationConfig& config,
                              std::string* error);

}  // namespace p2

#endif  // SRC_MON_OSCILLATION_H_
