#include "src/mon/ordering.h"

namespace p2 {

std::string OrderingProgram() {
  // ri1 is the paper's rule plus two repairs: the local node's own ID trivially falls
  // inside (pred, succ), so results naming the node itself are excluded, and so are
  // results equal to the successor (the interval in the paper is open but lookups
  // regularly return the successor itself).
  return R"OLG(
ri1 closerID@NAddr(ResltNodeID, ResltNodeAddr) :- lookupResults@NAddr(K, ResltNodeID,
    ResltNodeAddr, ReqNo, RespAddr), pred@NAddr(PID, PAddr), bestSucc@NAddr(SID, SAddr),
    node@NAddr(NID), ResltNodeID != NID, ResltNodeID in (PID, SID),
    PAddr != "-".

/* The token carries a hop count so a malformed ring (a cycle that misses the
   initiator) aborts the traversal instead of circulating forever. */
ri2 ordering@NAddr(E, NAddr, NID, 0, 0) :- orderingEvent@NAddr(E), node@NAddr(NID).
ri3 countWraps@NAddr(SAddr, E, SrcAddr, SID, Wraps, Hops) :- ordering@NAddr(E, SrcAddr,
    MyID, Wraps, Hops), bestSucc@NAddr(SID, SAddr), MyID < SID.
ri4 countWraps@NAddr(SAddr, E, SrcAddr, SID, Wraps + 1, Hops) :- ordering@NAddr(E,
    SrcAddr, MyID, Wraps, Hops), bestSucc@NAddr(SID, SAddr), MyID >= SID.
ri5 ordering@SAddr(E, SrcAddr, SID, Wraps, Hops + 1) :- countWraps@NAddr(SAddr, E,
    SrcAddr, SID, Wraps, Hops), SAddr != SrcAddr, Hops < maxHops.
ri6 orderingProblem@SrcAddr(E, SAddr, SID, Wraps) :- countWraps@NAddr(SAddr, E,
    SrcAddr, SID, Wraps, Hops), SAddr == SrcAddr, Wraps != 1.
ri7 orderingOk@SrcAddr(E, Wraps, Hops) :- countWraps@NAddr(SAddr, E, SrcAddr, SID,
    Wraps, Hops), SAddr == SrcAddr, Wraps == 1.
ri8 orderingAborted@SrcAddr(E, Hops) :- countWraps@NAddr(SAddr, E, SrcAddr, SID,
    Wraps, Hops), SAddr != SrcAddr, Hops >= maxHops.
)OLG";
}

bool InstallOrderingChecks(Node* node, std::string* error) {
  ParamMap params;
  params["maxHops"] = Value::Int(1000);
  if (!node->LoadProgram(OrderingProgram(), params, error)) {
    return false;
  }
  // A lost token silently kills the whole traversal (there is exactly one copy in
  // flight), so the token rides the reliable class. No-op when the node's
  // reliable_transport option is off.
  node->MarkReliable("ordering");
  return true;
}

void StartRingTraversal(Node* node, uint64_t traversal_id) {
  node->InjectEvent(Tuple::Make(
      "orderingEvent", {Value::Str(node->addr()), Value::Id(traversal_id)}));
}

}  // namespace p2
