// Proactive routing-consistency probes (paper §3.1.4, rules cs1–cs12; §3.3 "Routing
// Consistency Revisited" for the snapshot-based variant cs4s/cs5s).
//
// Every probe period the node picks a random key, asks each of its unique fingers to
// resolve it, clusters the answers, and emits a `consistency` event whose metric is
// |largest agreeing cluster| / |lookups issued| (1.0 means perfectly consistent).
// A `consAlarm` event fires when the metric falls below the alarm threshold.
//
// In snapshot mode the probe lookups run over a Chandy-Lamport snapshot of the routing
// state (rules l1s-l3s from src/mon/snapshot.h) instead of the live tables, eliminating
// the false positives/negatives of concurrent probes.

#ifndef SRC_MON_CONSISTENCY_H_
#define SRC_MON_CONSISTENCY_H_

#include <string>

#include "src/net/node.h"

namespace p2 {

struct ConsistencyConfig {
  double probe_period = 40.0;   // cs1: how often a probe begins
  double tally_period = 20.0;   // cs9: how often outstanding probes are tallied
  double tally_age = 20.0;      // cs9: a probe must be at least this old to tally
  double alarm_threshold = 0.5; // cs12
  double table_lifetime = 100.0;
  // Snapshot mode (paper §3.3): probe lookups run against snapshot `snapshot_id`
  // (requires InstallSnapshot). Live mode when false.
  bool snapshot_mode = false;
  int64_t snapshot_id = 0;  // `mysnap` in the paper
};

std::string ConsistencyProgram(const ConsistencyConfig& config);

// Installs the probe machinery. Subscribe to `consistency` (ProbeID, Metric) and
// `consAlarm` (ProbeID) events.
bool InstallConsistencyProbes(Node* node, const ConsistencyConfig& config,
                              std::string* error);

}  // namespace p2

#endif  // SRC_MON_CONSISTENCY_H_
