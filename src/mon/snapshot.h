// Consistent distributed snapshots (paper §3.3): Chandy-Lamport over P2-Chord,
// rules bp1–bp2 and sr1–sr16, plus lookups over a snapshot (rules l1s–l3s).
//
// Back-pointers: Chord nodes know their outgoing links (pingNode) but not their
// incoming ones; bp1 learns them from arriving pingReq messages.
//
// Protocol: the initiator periodically bumps the snapshot ID and starts a snapshot
// (sr1); every node receiving a first marker for a snapshot records its routing state
// (snapBestSucc / snapFingers / snapPred), forwards markers on all outgoing links, and
// records messages arriving on each incoming channel until that channel's marker
// arrives. When markers have arrived on all incoming channels, the snapshot phase
// becomes "Done" (sr12/sr13).
//
// Deviations from the paper's listing, documented in DESIGN.md:
//  * a currentSnap table (keys(1), monotonic) feeds sr1/sr14; snapState keeps one row
//    per snapshot ID so duplicate markers are recognized (the listing overloads one
//    table for both roles);
//  * sr11 closes the sender's channel directly (the listing's (C>0)||(Src==Remote)
//    join form also counted channels from non-back-pointer senders, which would make
//    the done-count never match numBackPointers);
//  * message recording (sr15/sr16) covers stabilizeRequest, notify, and lookupResults
//    — the message types in this Chord that carry their sender;
//  * sr14's marker-in-disguise handling applies to snapshot lookups (sLookupResults),
//    which are the messages that carry snapshot IDs here.

#ifndef SRC_MON_SNAPSHOT_H_
#define SRC_MON_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/net/node.h"

namespace p2 {

// One table captured into the snapshot: `arity` counts the fields after the address.
struct SnapshotCapture {
  std::string table;
  int arity = 1;
};

struct SnapshotConfig {
  // Period between snapshots; only meaningful on the initiator.
  double snap_period = 10.0;
  bool initiator = false;
  double state_lifetime = 100.0;    // snapped-state tables
  double channel_lifetime = 20.0;   // channel bookkeeping (short: see snapshot.cc)
  // Capture Chord's routing state (bestSucc/finger/pred) and install the
  // snapshot-lookup rules l1s-l3s (§3.3). Disable on non-Chord overlays.
  bool chord_state = true;
  // Additional tables to capture, each becoming a snapCap_<table> table keyed by
  // snapshot ID + row: e.g. {"rumorSeen", 1} on the flooding overlay.
  std::vector<SnapshotCapture> extra_captures;
  // Abort machinery (docs/ROBUSTNESS.md): when > 0, a snapshot still "Snapping"
  // this many seconds after it started locally — or whose node sees a reliable
  // channel fail while snapping — flips to snapState "Aborted" and writes a
  // snapDiag(NAddr, I, Reason, T) diagnostic row instead of hanging forever.
  // 0 disables the abort rules entirely (no extra periodic, no extra tables).
  double abort_timeout = 0.0;
  double abort_check_period = 1.0;
};

// The OverLog text common to all nodes (protocol core + the captures `config` asks
// for).
std::string SnapshotProgram(const SnapshotConfig& config);

// The extra initiator-only rules (sr1 and the initiator's channel bootstrap).
std::string SnapshotInitiatorProgram();

// The abort rules sra1-sra3 (loaded by InstallSnapshot when abort_timeout > 0).
std::string SnapshotAbortProgram();

// Installs the snapshot machinery on `node` and seeds currentSnap(0).
bool InstallSnapshot(Node* node, const SnapshotConfig& config, std::string* error);

// Highest snapshot ID whose phase is "Done" on `node` (0 if none).
int64_t LatestDoneSnapshot(Node* node);

// Issues a lookup for `key` against snapshot `snap_id`, starting at `node`. The result
// arrives at `node` as an sLookupResults event.
void IssueSnapshotLookup(Node* node, int64_t snap_id, uint64_t key, uint64_t req_id);

// ---- offline forensics (§3.3: snapshots as checkpoints) ----
//
// ExportSnapshot serializes every row of snapshot `snap_id` held at `node` (its
// snapState row plus all snapBestSucc/snapFingers/snapPred/snapCap_* rows) using the
// wire codec. Exports from all nodes concatenate: a forensic dump of the global state.
//
// ImportSnapshot loads a dump into `node` — typically a fresh, offline "analyst" node
// outside the original deployment. Rows keep their original addresses as data, so
// OverLog analysis rules on the analyst join them with ordinary variables.
std::string ExportSnapshot(Node* node, int64_t snap_id);
bool ImportSnapshot(Node* node, const std::string& bytes, std::string* error);

}  // namespace p2

#endif  // SRC_MON_SNAPSHOT_H_
