#include "src/mon/profiler.h"

namespace p2 {

std::string ProfilerProgram() {
  // trav(NAddr, ID, Curr, LastT, RuleT, NetT, LocalT): ID is the tuple being explained,
  // Curr the tuple currently being traced (local ID), LastT the time Curr was consumed
  // by its downstream rule.
  return R"OLG(
ep1 trav@NAddr(ID, ID, T, 0, 0, 0) :- traceResp@NAddr(ID, T).

/* Where did Curr come from? Locally (SrcAddr == NAddr) or over the network. Continue
   the walk at the origin with the origin-local ID. */
ep2 ruleBack@SrcAddr(ID, SrcTID, LastT, RuleT, NetT, LocalT, NAddr) :- trav@NAddr(ID,
    Curr, LastT, RuleT, NetT, LocalT), tupleTable@NAddr(Curr, SrcAddr, SrcTID, LocSpec).

/* Find the rule execution that produced Curr from its triggering event. ep3: the
   consumer was on this node, so the gap LastT - OutT is local queueing. ep4: the gap
   was a network crossing. */
ep3 forward@NAddr(ID, In, InT, RuleT + OutT - InT, NetT, LocalT + LastT - OutT, Rule) :-
    ruleBack@NAddr(ID, Curr, LastT, RuleT, NetT, LocalT, ConsumerAddr),
    ConsumerAddr == NAddr, ruleExec@NAddr(Rule, In, Curr, InT, OutT, true).
ep4 forward@NAddr(ID, In, InT, RuleT + OutT - InT, NetT + LastT - OutT, LocalT, Rule) :-
    ruleBack@NAddr(ID, Curr, LastT, RuleT, NetT, LocalT, ConsumerAddr),
    ConsumerAddr != NAddr, ruleExec@NAddr(Rule, In, Curr, InT, OutT, true).

/* Keep walking until the originating rule is reached, then report. */
ep5 trav@NAddr(ID, In, InT, RuleT, NetT, LocalT) :- forward@NAddr(ID, In, InT, RuleT,
    NetT, LocalT, Rule), Rule != targetRule.
ep6 report@NAddr(ID, RuleT, NetT, LocalT) :- forward@NAddr(ID, In, InT, RuleT, NetT,
    LocalT, Rule), Rule == targetRule.
)OLG";
}

bool InstallProfiler(Node* node, const ProfilerConfig& config, std::string* error) {
  ParamMap params;
  params["targetRule"] = Value::Str(config.target_rule);
  return node->LoadProgram(ProfilerProgram(), params, error);
}

void StartTrace(Node* node, const TupleRef& tuple, double received_at) {
  uint64_t id = node->store().Intern(tuple);
  node->InjectEvent(Tuple::Make(
      "traceResp",
      {Value::Str(node->addr()), Value::Id(id), Value::Double(received_at)}));
}

}  // namespace p2
