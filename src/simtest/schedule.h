// Seeded schedule generation for the simulation fuzzer (docs/TESTING.md).
//
// A Schedule is a fuzz profile (fleet shape + phase lengths + fault intensities)
// plus a sorted list of fault/workload events inside the fault window. Schedules are
// generated deterministically from a seed, rendered to the scenario language
// (src/tools/scenario.h) for execution, and parsed back losslessly — the shrunk
// repro a failing fuzz run prints is an ordinary scenario file.
//
// Run phases: setup (nodes + chord + monitors + dht) -> `run warmup` (ring
// formation) -> the event window (directives interleaved with `run` gaps) -> an
// epilogue that heals every partition, clears every link fault, recovers every node,
// and settles. All times are quantized to milliseconds so the text form round-trips
// bit-exactly through the scenario grammar.

#ifndef SRC_SIMTEST_SCHEDULE_H_
#define SRC_SIMTEST_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace p2 {
namespace simtest {

// NodeOptions ablation switches threaded into the emitted `node` directives
// (differential mode diffs deterministic table contents across these).
struct Ablation {
  bool use_join_indexes = true;
  bool metrics = true;
  bool reliable_transport = true;
  // Bounded forensics retention on every node (scenario `forensics budget=...`).
  // On by default so fuzz runs exercise the dual-write path and the
  // retention-consistency oracle has something to judge; like indexes/metrics it
  // is a pure observer and must leave the deterministic table digests bit-identical.
  bool forensics = true;
  // Overload-resilience limits on every node (scenario `limits ...` with the
  // canonical budgets below). Off by default: unlike the observer switches above,
  // shedding changes table contents, so limits-on digests are only required to be
  // identical across shard counts, not to the limits-off run. The overload oracle
  // (#9) arms when this is on.
  bool overload_limits = false;
  // Engine hot-path toggles (docs/SCALING.md "Memory model & hot-path batching").
  // All three default on, matching NodeOptions; each is a pure mechanical
  // optimization, so flipping any of them must leave table digests, traces, and
  // deterministic counters bit-identical (the differential runner checks this).
  bool tuple_arenas = true;
  bool batch_deltas = true;
  bool zero_copy_decode = true;
};

// The canonical `limits` line rendered when Ablation::overload_limits is on —
// budgets generous enough that fuzz workloads bound memory without starving the
// control plane (the overload oracle rejects any reliable-class shed).
inline constexpr char kFuzzLimitsLine[] =
    "limits queue=256 low=256 window=64 backlog=1024 reorder=64 degrade=64\n";

struct FuzzProfile {
  int num_nodes = 5;
  double warmup = 40;    // ring formation before any fault
  double duration = 50;  // the fault/workload window
  double settle = 25;    // heal + recover + quiesce before observation
  double latency = 0.02;
  double jitter = 0.01;
  double loss = 0;  // global message loss for the whole run
  int shards = 1;   // worker shards for the fleet runtime (scenario `net shards=N`);
                    // any value must reproduce the shards=1 digests bit-exactly
  // Monitor configuration (ring checks + snapshots on every node).
  double snap_period = 10;
  double snap_abort = 8;  // must stay < settle so hung snapshots get judged
  double snap_check = 1;
  double probe_period = 15;
  // Event counts inside the fault window.
  int churn_events = 0;      // crash + paired recover
  int linkfault_events = 0;  // link fault + paired clear
  int partition_events = 0;  // partition + paired heal
  int put_events = 2;
  int get_events = 2;

  // A quiet profile: workload only, no fault injection (strict conservation).
  static FuzzProfile Quiet();
  // The smoke-tier fault profile: 0.2 link loss, churn, and partitions.
  static FuzzProfile Faulty();
};

enum class EvKind {
  kCrash,
  kRecover,
  kLinkFault,
  kLinkClear,
  kPartition,
  kHeal,
  kPut,
  kGet,
};

struct SimEvent {
  double at = 0;  // seconds after the warmup phase, ms-quantized
  EvKind kind = EvKind::kPut;
  int a = 0;  // primary node index
  int b = 0;  // linkfault dst / partition split point (first b nodes vs the rest)
  double loss = 0;
  double dup = 0;
  double reorder = 0;
  double latency = 0;
  std::string key;
  std::string value;
  uint64_t req = 0;
};

struct Schedule {
  uint64_t seed = 0;
  FuzzProfile profile;
  std::vector<SimEvent> events;  // sorted by `at`
};

// Deterministically generates the schedule for `seed` under `profile`.
Schedule GenerateSchedule(uint64_t seed, const FuzzProfile& profile);

// True when the schedule injects any fault at all (global loss, crash, link fault,
// or partition) — the strict conservation oracle only arms on fault-free schedules.
bool ScheduleHasFaults(const Schedule& schedule);

// Renders the schedule as an executable scenario script (the canonical text form:
// reproducibility compares these strings byte-for-byte).
std::string ScheduleToScenario(const Schedule& schedule, const Ablation& ablation = {});

// Parses a simfuzz-emitted scenario back into a Schedule (the inverse of
// ScheduleToScenario: parse-then-render is byte-identical). Returns false with
// `error` set for files this tool did not emit.
bool ScenarioToSchedule(const std::string& text, Schedule* out, std::string* error);

// "n<i>" — fleet addressing shared by generator and oracles.
std::string AddrOf(int i);

}  // namespace simtest
}  // namespace p2

#endif  // SRC_SIMTEST_SCHEDULE_H_
