// The simulation-fuzzer harness (docs/TESTING.md): executes generated schedules
// through the scenario interpreter, observes the fleet through the engine's own
// introspection surface, and judges the run with the invariant oracle library.
//
// The harness is deliberately thin: a Schedule renders to scenario text
// (src/simtest/schedule.h) and the text is what runs — so every failing run is
// already a replayable scenario file, and greedy shrinking just re-renders smaller
// schedules until the failure stops reproducing.

#ifndef SRC_SIMTEST_SIMFUZZ_H_
#define SRC_SIMTEST_SIMFUZZ_H_

#include <set>
#include <string>
#include <vector>

#include "src/simtest/oracles.h"
#include "src/simtest/schedule.h"

namespace p2 {
namespace simtest {

struct SimFuzzOptions {
  Ablation ablation;
  // Adds the test-only BrokenCrashOracle (a planted always-wrong invariant) so the
  // failure -> shrink -> replay pipeline can be exercised on demand.
  bool broken_oracle = false;
  // On oracle failure, replay the whole run's causal chains from the forensics
  // stores into RunResult::chain_export (simfuzz --chains-out). Off by default —
  // the export walks every chain, which would slow the shrinking loop.
  bool export_chains_on_failure = false;
};

struct RunResult {
  std::string scenario;  // the exact script that executed
  bool script_ok = true;
  std::string script_error;  // line-numbered, when !script_ok
  std::vector<Violation> violations;
  // Sorted dump of all non-sys, non-trace tables across the fleet (what differential
  // mode diffs across ablations).
  std::string table_digest;
  // table_digest plus the ruleExec/tupleTable trace tables (what same-seed
  // reproducibility compares; trace rows are deterministic but GC-cadence-sensitive,
  // so they stay out of the cross-ablation digest).
  std::string full_digest;
  // JSONL causal-chain export replayed from the fleet's forensics stores (key "*",
  // whole run window, every node). Populated only for runs that fail an oracle on a
  // fleet with retention enabled — the time-travel context a violation leaves
  // behind, uploaded next to the shrunk repro in CI.
  std::string chain_export;
  uint64_t total_msgs = 0;
  double virtual_secs = 0;

  bool failed() const { return !script_ok || !violations.empty(); }
  // Names of oracles that fired ("script" for interpreter failures).
  std::set<std::string> FailedOracles() const;
  // One line per verdict, for logs.
  std::string Summary() const;
};

// Renders and runs `schedule`, then checks every oracle.
RunResult RunSchedule(const Schedule& schedule, const SimFuzzOptions& opts = {});

// Runs an arbitrary scenario text under the oracles (CLI --replay for files that are
// not canonical simfuzz output). `meta` supplies crash-count/faultiness/snapshot
// context when the text parses as a simfuzz schedule; pass nullptr otherwise (the
// conservation oracle then runs in its lenient mode).
RunResult RunScenarioText(const std::string& scenario, const Schedule* meta,
                          const SimFuzzOptions& opts = {});

// Greedy event-drop shrinking: starting from a failing `schedule`, repeatedly drops
// events whose removal still reproduces at least one of the originally failed
// oracles. Returns the minimal schedule (== input when it did not fail). `runs_out`
// counts harness executions spent shrinking (may be null).
Schedule ShrinkSchedule(const Schedule& schedule, const SimFuzzOptions& opts,
                        int* runs_out);

// Differential mode: runs `schedule` under the base config and under each single
// ablation (indexes off, metrics off, reliable off) and returns one human-readable
// line per divergence. Index/metrics ablations must produce bit-identical table
// digests on any schedule; the reliable-transport ablation changes message
// interleavings, so it is judged by the oracles instead of by digest.
std::vector<std::string> DifferentialRun(const Schedule& schedule);

}  // namespace simtest
}  // namespace p2

#endif  // SRC_SIMTEST_SIMFUZZ_H_
