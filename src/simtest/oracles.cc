#include "src/simtest/oracles.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "src/common/strings.h"
#include "src/net/network.h"
#include "src/trace/replay.h"

namespace p2 {
namespace simtest {

namespace {

constexpr double kEps = 1e-9;

void Report(std::vector<Violation>* out, const std::string& oracle,
            std::string detail) {
  out->push_back(Violation{oracle, std::move(detail)});
}

// Detects a directed cycle in `edges`; on success names one node on the cycle.
bool HasCycle(const std::vector<std::pair<uint64_t, uint64_t>>& edges,
              uint64_t* witness) {
  std::map<uint64_t, std::vector<uint64_t>> adj;
  for (const auto& e : edges) {
    adj[e.first].push_back(e.second);
    adj[e.second];  // ensure every vertex exists
  }
  // Iterative three-color DFS.
  std::map<uint64_t, int> color;  // 0 white, 1 grey, 2 black
  for (const auto& [root, _] : adj) {
    if (color[root] != 0) {
      continue;
    }
    std::vector<std::pair<uint64_t, size_t>> stack = {{root, 0}};
    color[root] = 1;
    while (!stack.empty()) {
      auto& [v, idx] = stack.back();
      const std::vector<uint64_t>& next = adj[v];
      if (idx >= next.size()) {
        color[v] = 2;
        stack.pop_back();
        continue;
      }
      uint64_t w = next[idx++];
      if (color[w] == 1) {
        *witness = w;
        return true;
      }
      if (color[w] == 0) {
        color[w] = 1;
        stack.push_back({w, 0});
      }
    }
  }
  return false;
}

// --- the built-in oracles -------------------------------------------------------

// ruleExec rows are causally sane: CauseTime <= OutTime, both within [0, now], and
// the same-instant *event* derivation subgraph is acyclic. Any cross-instant cycle
// is already impossible when CauseTime <= OutTime holds transitively; at a single
// instant, a materialized head may legitimately re-derive its own cause (the store
// interns by content and the table absorbs the re-insert as a refresh, breaking the
// loop — chord's sb10/pp5 refresh rules do this every stabilization round), but an
// event head cannot: a same-instant event cycle would recurse without bound.
void CheckCausality(const FleetObservation& obs, std::vector<Violation>* out) {
  for (const NodeObs& n : obs.nodes) {
    std::map<double, std::vector<std::pair<uint64_t, uint64_t>>> instants;
    for (const RuleExecObs& r : n.rule_exec) {
      if (r.cause_time > r.out_time + kEps) {
        Report(out, "causality",
               StrFormat("%s rule %s: CauseTime %.6f > OutTime %.6f", n.addr.c_str(),
                         r.rule_id.c_str(), r.cause_time, r.out_time));
      }
      if (r.cause_time < -kEps || r.out_time > obs.now + kEps) {
        Report(out, "causality",
               StrFormat("%s rule %s: times [%.6f, %.6f] outside run window [0, %.6f]",
                         n.addr.c_str(), r.rule_id.c_str(), r.cause_time, r.out_time,
                         obs.now));
      }
      if (r.cause_time != r.out_time || r.effect_materialized) {
        continue;
      }
      if (r.cause_id == r.effect_id) {
        Report(out, "causality",
               StrFormat("%s rule %s: event id:%llu derives itself at t=%.6f",
                         n.addr.c_str(), r.rule_id.c_str(),
                         static_cast<unsigned long long>(r.cause_id), r.out_time));
      } else {
        instants[r.out_time].push_back({r.cause_id, r.effect_id});
      }
    }
    for (const auto& [t, edges] : instants) {
      uint64_t witness = 0;
      if (HasCycle(edges, &witness)) {
        Report(out, "causality",
               StrFormat("%s: same-instant derivation cycle at t=%.6f through id:%llu",
                         n.addr.c_str(), t,
                         static_cast<unsigned long long>(witness)));
      }
    }
  }
}

// Live trace rows resolve: every CauseID/EffectID of a live ruleExec row and every
// TupleID of a live tupleTable row is memoized locally, and when a cross-node
// provenance link resolves on both ends the two stores hold identical content.
// (An origin that already refcount-expired its copy is fine — §2.1.3's GC.)
void CheckTraceRefs(const FleetObservation& obs, std::vector<Violation>* out) {
  for (const NodeObs& n : obs.nodes) {
    for (const RuleExecObs& r : n.rule_exec) {
      if (!r.cause_resolved) {
        Report(out, "trace-refs",
               StrFormat("%s rule %s: live ruleExec cause id:%llu not in store",
                         n.addr.c_str(), r.rule_id.c_str(),
                         static_cast<unsigned long long>(r.cause_id)));
      }
      if (!r.effect_resolved) {
        Report(out, "trace-refs",
               StrFormat("%s rule %s: live ruleExec effect id:%llu not in store",
                         n.addr.c_str(), r.rule_id.c_str(),
                         static_cast<unsigned long long>(r.effect_id)));
      }
    }
    for (const CrossRef& c : n.cross_refs) {
      if (!c.resolved_local) {
        Report(out, "trace-refs",
               StrFormat("%s: live tupleTable row id:%llu not in store", n.addr.c_str(),
                         static_cast<unsigned long long>(c.tuple_id)));
      }
      if (c.resolved_local && c.resolved_src && c.local_text != c.src_text) {
        Report(out, "trace-refs",
               StrFormat("%s id:%llu <- %s id:%llu: content mismatch (%s vs %s)",
                         n.addr.c_str(), static_cast<unsigned long long>(c.tuple_id),
                         c.src_addr.c_str(),
                         static_cast<unsigned long long>(c.src_tuple_id),
                         c.local_text.c_str(), c.src_text.c_str()));
      }
    }
  }
}

// Reliable channels deliver per-epoch FIFO exactly-once: for each (src, dst) the
// accepted epochs never regress and within an epoch the delivered sequence numbers
// are exactly 1, 2, 3, ... in order.
void CheckReliableFifo(const FleetObservation& obs, std::vector<Violation>* out) {
  struct ChanState {
    uint64_t epoch = 0;
    uint64_t next = 1;
  };
  std::map<std::pair<std::string, std::string>, ChanState> chans;
  for (const ChannelDelivery& d : obs.deliveries) {
    ChanState& s = chans[{d.src, d.dst}];
    if (s.epoch == 0) {
      s.epoch = d.epoch;
    }
    if (d.epoch < s.epoch) {
      Report(out, "reliable-fifo",
             StrFormat("%s->%s: epoch regressed %llu -> %llu", d.src.c_str(),
                       d.dst.c_str(), static_cast<unsigned long long>(s.epoch),
                       static_cast<unsigned long long>(d.epoch)));
      continue;
    }
    if (d.epoch > s.epoch) {
      s.epoch = d.epoch;
      s.next = 1;
    }
    if (d.seq != s.next) {
      Report(out, "reliable-fifo",
             StrFormat("%s->%s epoch %llu: delivered seq %llu, expected %llu",
                       d.src.c_str(), d.dst.c_str(),
                       static_cast<unsigned long long>(d.epoch),
                       static_cast<unsigned long long>(d.seq),
                       static_cast<unsigned long long>(s.next)));
      // Resynchronize so one gap doesn't cascade into a violation per delivery.
      s.next = d.seq + 1;
    } else {
      ++s.next;
    }
  }
}

// Per-peer reliable channel counters are internally consistent: a channel never
// acknowledges or abandons more messages than it first-sent.
void CheckChannelStats(const FleetObservation& obs, std::vector<Violation>* out) {
  for (const NodeObs& n : obs.nodes) {
    for (const auto& [peer, cs] : n.channels) {
      if (cs.acked > cs.sent) {
        Report(out, "channel-stats",
               StrFormat("%s->%s: acked %llu > sent %llu", n.addr.c_str(),
                         peer.c_str(), static_cast<unsigned long long>(cs.acked),
                         static_cast<unsigned long long>(cs.sent)));
      }
      if (cs.failed > cs.sent) {
        Report(out, "channel-stats",
               StrFormat("%s->%s: failed %llu > sent %llu", n.addr.c_str(),
                         peer.c_str(), static_cast<unsigned long long>(cs.failed),
                         static_cast<unsigned long long>(cs.sent)));
      }
    }
  }
}

// Soft-state tables respect their declared bounds: live rows never exceed max_size,
// and the live count is consistent with the cumulative mutation counters (every live
// row was inserted and not yet expired/deleted/evicted).
void CheckSoftState(const FleetObservation& obs, std::vector<Violation>* out) {
  for (const NodeObs& n : obs.nodes) {
    for (const TableObs& t : n.tables) {
      if (t.live_rows > t.max_size) {
        Report(out, "soft-state",
               StrFormat("%s.%s: %llu live rows > max_size %llu", n.addr.c_str(),
                         t.name.c_str(), static_cast<unsigned long long>(t.live_rows),
                         static_cast<unsigned long long>(t.max_size)));
      }
      uint64_t removed = t.counters.expires + t.counters.deletes + t.counters.evictions;
      if (t.counters.inserts < removed + t.live_rows) {
        Report(out, "soft-state",
               StrFormat("%s.%s: %llu live rows but only %llu inserts vs %llu removals",
                         n.addr.c_str(), t.name.c_str(),
                         static_cast<unsigned long long>(t.live_rows),
                         static_cast<unsigned long long>(t.counters.inserts),
                         static_cast<unsigned long long>(removed)));
      }
    }
  }
}

// Snapshots terminate: with the abort machinery on, no snapshot may still be
// "Snapping" once its local start is older than the abort deadline (plus check-period
// slack), and every "Aborted" snapshot must have left a snapDiag diagnostic.
void CheckSnapshotLiveness(const FleetObservation& obs, std::vector<Violation>* out) {
  for (const NodeObs& n : obs.nodes) {
    if (!n.up) {
      continue;  // a crashed node's timers are dead; judged after recovery
    }
    for (const SnapObs& s : n.snapshots) {
      if (s.state == "Snapping" && obs.snap_abort_timeout > 0 && s.has_started_time) {
        double deadline =
            obs.snap_abort_timeout + 3 * obs.snap_abort_check + 1.0;
        if (obs.now - s.started_time > deadline) {
          Report(out, "snapshot-liveness",
                 StrFormat("%s snapshot %lld: still Snapping %.1fs after start "
                           "(abort deadline %.1fs)",
                           n.addr.c_str(), static_cast<long long>(s.snap_id),
                           obs.now - s.started_time, deadline));
        }
      }
      if (s.state == "Aborted" && !s.has_diag) {
        Report(out, "snapshot-liveness",
               StrFormat("%s snapshot %lld: Aborted without a snapDiag row",
                         n.addr.c_str(), static_cast<long long>(s.snap_id)));
      }
    }
  }
}

// Network message accounting balances: every message the network carried was sent by
// some node, per-channel deliveries equal sends minus drops plus duplicates, nodes
// never receive more than the network delivered, and per-node rule emits never exceed
// routed tuples. With no fault injection at all, nothing may be dropped, duplicated,
// or reordered.
void CheckConservation(const FleetObservation& obs, std::vector<Violation>* out) {
  uint64_t sum_sent = 0;
  uint64_t sum_recv = 0;
  for (const NodeObs& n : obs.nodes) {
    sum_sent += n.stats.msgs_sent;
    sum_recv += n.stats.msgs_received;
    if (n.metrics_enabled && n.rule_emits_total > n.stats.tuples_emitted) {
      Report(out, "conservation",
             StrFormat("%s: rule metrics emitted %llu > node total %llu",
                       n.addr.c_str(),
                       static_cast<unsigned long long>(n.rule_emits_total),
                       static_cast<unsigned long long>(n.stats.tuples_emitted)));
    }
  }
  if (obs.total_msgs != sum_sent) {
    Report(out, "conservation",
           StrFormat("network carried %llu msgs but nodes sent %llu",
                     static_cast<unsigned long long>(obs.total_msgs),
                     static_cast<unsigned long long>(sum_sent)));
  }
  if (obs.delivered_msgs != obs.total_msgs - obs.dropped_msgs + obs.duplicated_msgs) {
    Report(out, "conservation",
           StrFormat("delivered %llu != sent %llu - dropped %llu + duplicated %llu",
                     static_cast<unsigned long long>(obs.delivered_msgs),
                     static_cast<unsigned long long>(obs.total_msgs),
                     static_cast<unsigned long long>(obs.dropped_msgs),
                     static_cast<unsigned long long>(obs.duplicated_msgs)));
  }
  if (sum_recv > obs.delivered_msgs) {
    Report(out, "conservation",
           StrFormat("nodes received %llu > network delivered %llu",
                     static_cast<unsigned long long>(sum_recv),
                     static_cast<unsigned long long>(obs.delivered_msgs)));
  }
  if (obs.faults_free &&
      (obs.dropped_msgs > 0 || obs.duplicated_msgs > 0 || obs.reordered_msgs > 0)) {
    Report(out, "conservation",
           StrFormat("faults-free run dropped/duplicated/reordered %llu/%llu/%llu msgs",
                     static_cast<unsigned long long>(obs.dropped_msgs),
                     static_cast<unsigned long long>(obs.duplicated_msgs),
                     static_cast<unsigned long long>(obs.reordered_msgs)));
  }
}

// The forensics retention store is a dual-write mirror of the live trace tables:
// as long as neither side has lost history (no dropped segments, no expired/evicted
// trace rows — ObserveFleet checks and sets forensics_comparable), replaying a
// window through the store must reconstruct bit-identical causal chains to walking
// the live tables. Any digest divergence means the mirror recorded, indexed, or
// replayed an execution differently than it happened.
void CheckRetentionConsistency(const FleetObservation& obs,
                               std::vector<Violation>* out) {
  if (!obs.forensics_comparable) {
    return;  // history was (legitimately) lost on one side; nothing to compare
  }
  for (const NodeObs& n : obs.nodes) {
    if (!n.forensics_enabled) {
      continue;
    }
    if (n.live_chain_digest != n.replay_chain_digest) {
      Report(out, "retention-consistency",
             StrFormat("%s: forensics replay digest %s != live walk digest %s",
                       n.addr.c_str(), n.replay_chain_digest.c_str(),
                       n.live_chain_digest.c_str()));
    }
  }
}

// Overload resilience under admission limits (docs/ROBUSTNESS.md). Three claims,
// each gated on the corresponding cap actually being configured (so limits-off
// observations are vacuously clean):
//   bounded memory     — every capped buffer's high-water mark stayed within its
//                        cap (best-effort queue share, low-priority queue, in-flight
//                        window, sender backlog, reorder holdback)
//   control survival   — shedding never touched the reliable/control class: no
//                        reliable tuple shed, no windowed send abandoned
//   liveness           — once the epilogue settles, up nodes have drained their
//                        delivery queues and the degrade watchdog has restored
void CheckOverload(const FleetObservation& obs, std::vector<Violation>* out) {
  for (const NodeObs& n : obs.nodes) {
    auto bound = [&](const char* what, uint64_t hwm, uint64_t cap) {
      if (cap > 0 && hwm > cap) {
        Report(out, "overload",
               StrFormat("%s: %s high-water %llu exceeds cap %llu", n.addr.c_str(),
                         what, static_cast<unsigned long long>(hwm),
                         static_cast<unsigned long long>(cap)));
      }
    };
    bound("best-effort queue", n.stats.be_queue_hwm, n.queue_cap);
    bound("low-priority queue", n.stats.low_queue_hwm, n.low_queue_cap);
    bound("in-flight window", n.stats.rel_pending_hwm, n.rel_window);
    bound("sender backlog", n.stats.rel_backlog_hwm, n.rel_backlog_cap);
    bound("reorder holdback", n.stats.rel_reorder_hwm, n.rel_reorder_cap);
    if (n.stats.shed_reliable > 0) {
      Report(out, "overload",
             StrFormat("%s: shed %llu reliable/control tuple(s)", n.addr.c_str(),
                       static_cast<unsigned long long>(n.stats.shed_reliable)));
    }
    if (!n.up) {
      continue;  // a crashed node's queue and watchdog die with it
    }
    if (n.queue_depth > 0) {
      Report(out, "overload",
             StrFormat("%s: %llu deliveries still queued after settle", n.addr.c_str(),
                       static_cast<unsigned long long>(n.queue_depth)));
    }
    if (n.degraded) {
      Report(out, "overload",
             StrFormat("%s: still degraded after settle (%llu enters, %llu exits)",
                       n.addr.c_str(),
                       static_cast<unsigned long long>(n.stats.degrade_enters),
                       static_cast<unsigned long long>(n.stats.degrade_exits)));
    }
  }
}

// FNV-1a over the JSONL chain export (stable across platforms; the oracle only
// needs equality, the hex form just keeps violations printable).
std::string ChainDigest(const std::string& jsonl) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : jsonl) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return StrFormat("%016llx", static_cast<unsigned long long>(h));
}

}  // namespace

std::vector<Oracle> BuiltinOracles() {
  return {
      {"causality", "ruleExec rows have CauseTime <= OutTime and no same-instant cycle",
       CheckCausality},
      {"trace-refs", "live trace rows resolve; cross-node provenance content matches",
       CheckTraceRefs},
      {"reliable-fifo", "reliable channels deliver per-epoch FIFO exactly-once",
       CheckReliableFifo},
      {"channel-stats", "per-peer reliable counters: Acked <= Sent, Failed <= Sent",
       CheckChannelStats},
      {"soft-state", "tables within max_size and consistent with mutation counters",
       CheckSoftState},
      {"snapshot-liveness", "snapshots complete or abort with snapDiag; never hang",
       CheckSnapshotLiveness},
      {"conservation", "network message accounting balances (strict when faults-free)",
       CheckConservation},
      {"retention-consistency",
       "forensics replay reproduces the live causal walk when nothing was lost",
       CheckRetentionConsistency},
      {"overload",
       "caps hold at high-water, control plane never shed, degrade restores",
       CheckOverload},
  };
}

Oracle BrokenCrashOracle() {
  return {"broken-crash", "test-only planted bug: rejects any schedule with a crash",
          [](const FleetObservation& obs, std::vector<Violation>* out) {
            if (obs.crash_events > 0) {
              Report(out, "broken-crash",
                     StrFormat("schedule crashed a node %llu time(s)",
                               static_cast<unsigned long long>(obs.crash_events)));
            }
          }};
}

void RunOracles(const std::vector<Oracle>& oracles, const FleetObservation& obs,
                std::vector<Violation>* out) {
  for (const Oracle& oracle : oracles) {
    oracle.check(obs, out);
  }
}

FleetObservation ObserveFleet(Network* net, std::vector<ChannelDelivery> deliveries) {
  FleetObservation obs;
  obs.now = net->Now();
  obs.total_msgs = net->total_msgs();
  obs.dropped_msgs = net->dropped_msgs();
  obs.duplicated_msgs = net->duplicated_msgs();
  obs.reordered_msgs = net->reordered_msgs();
  for (const Network::ChannelTraffic& ch : net->ChannelsSnapshot()) {
    obs.delivered_msgs += ch.delivered_msgs;
  }
  obs.deliveries = std::move(deliveries);
  for (Node* node : net->AllNodes()) {
    NodeObs n;
    n.addr = node->addr();
    n.up = node->IsUp();
    n.stats = node->stats();
    n.metrics_enabled = node->options().metrics;
    n.forensics_enabled = node->forensics() != nullptr;
    n.queue_cap = node->options().queue_cap;
    n.low_queue_cap = node->options().low_queue_cap;
    n.rel_window = node->options().rel_window;
    n.rel_backlog_cap = node->options().rel_backlog;
    n.rel_reorder_cap = node->options().rel_reorder_cap;
    n.queue_depth = node->QueueDepth();
    n.degraded = node->degraded();
    for (const auto& [rule_id, rm] : node->metrics().rules()) {
      n.rule_emits_total += rm->emits;
    }
    std::set<std::string> table_names;
    for (Table* table : node->catalog().AllTables()) {
      table_names.insert(table->spec().name);
    }
    for (const TupleRef& t : node->TableContents("ruleExec")) {
      RuleExecObs r;
      r.rule_id = t->field(1).AsString();
      r.cause_id = t->field(2).AsId();
      r.effect_id = t->field(3).AsId();
      r.cause_time = t->field(4).AsDouble();
      r.out_time = t->field(5).AsDouble();
      r.is_event = t->field(6).AsBool();
      r.cause_resolved = node->store().Lookup(r.cause_id) != nullptr;
      TupleRef effect = node->store().Lookup(r.effect_id);
      r.effect_resolved = effect != nullptr;
      // Unresolvable effects can't be classified; trace-refs flags them, so keep
      // them out of the causality event graph by treating them as materialized.
      r.effect_materialized =
          effect == nullptr || table_names.count(effect->name()) > 0;
      n.rule_exec.push_back(std::move(r));
    }
    for (const TupleRef& t : node->TableContents("tupleTable")) {
      CrossRef c;
      c.node = n.addr;
      c.tuple_id = t->field(1).AsId();
      c.src_addr = t->field(2).AsString();
      c.src_tuple_id = t->field(3).AsId();
      TupleRef local = node->store().Lookup(c.tuple_id);
      c.resolved_local = local != nullptr;
      if (local != nullptr) {
        c.local_text = local->ToString();
      }
      Node* src_node = net->GetNode(c.src_addr);
      c.src_node_known = src_node != nullptr;
      if (src_node != nullptr && src_node != node) {
        TupleRef src = src_node->store().Lookup(c.src_tuple_id);
        c.resolved_src = src != nullptr;
        if (src != nullptr) {
          c.src_text = src->ToString();
        }
      }
      n.cross_refs.push_back(std::move(c));
    }
    n.channels = node->channel_stats();
    for (Table* table : node->catalog().AllTables()) {
      TableObs to;
      to.name = table->spec().name;
      to.live_rows = table->Size(obs.now);  // purges lazily before counters are read
      to.max_size = table->spec().max_size;
      to.counters = table->counters();
      n.tables.push_back(std::move(to));
    }
    std::map<int64_t, double> started;
    for (const TupleRef& t : node->TableContents("snapStarted")) {
      started[t->field(1).AsInt()] = t->field(2).AsDouble();
    }
    std::set<int64_t> diags;
    for (const TupleRef& t : node->TableContents("snapDiag")) {
      diags.insert(t->field(1).AsInt());
    }
    for (const TupleRef& t : node->TableContents("snapState")) {
      SnapObs s;
      s.snap_id = t->field(1).AsInt();
      s.state = t->field(2).AsString();
      auto it = started.find(s.snap_id);
      s.has_started_time = it != started.end();
      if (s.has_started_time) {
        s.started_time = it->second;
      }
      s.has_diag = diags.count(s.snap_id) > 0;
      n.snapshots.push_back(std::move(s));
    }
    obs.nodes.push_back(std::move(n));
  }
  // Retention-consistency inputs. Runs only when some node retains forensics
  // history (forensics-off observation is unchanged). Comparability demands that
  // neither representation lost anything: no store dropped a segment, and no
  // ruleExec/tupleTable row anywhere expired or was deleted/evicted (the table
  // counters above were read after the lazy purge in Table::Size, so they are
  // current). Cross-node hops walk through peers, so loss anywhere in the fleet
  // voids the comparison for every node.
  std::vector<Node*> all_nodes = net->AllNodes();
  bool any_forensics = false;
  for (Node* node : all_nodes) {
    any_forensics = any_forensics || node->forensics() != nullptr;
  }
  if (any_forensics) {
    bool comparable = true;
    for (Node* node : all_nodes) {
      if (node->forensics() != nullptr &&
          node->forensics()->Stats().dropped_segments > 0) {
        comparable = false;
      }
    }
    for (const NodeObs& n : obs.nodes) {
      for (const TableObs& t : n.tables) {
        if ((t.name == "ruleExec" || t.name == "tupleTable") &&
            t.counters.expires + t.counters.deletes + t.counters.evictions > 0) {
          comparable = false;
        }
      }
    }
    obs.forensics_comparable = comparable;
    if (comparable) {
      // Two resolver universes over the same fleet: all-live, and
      // forensics-where-available (what Fleet::ReplayChains serves).
      std::vector<std::unique_ptr<TraceSource>> live_sources;
      std::vector<std::unique_ptr<TraceSource>> replay_sources;
      std::map<std::string, TraceSource*> live_by_addr;
      std::map<std::string, TraceSource*> replay_by_addr;
      for (Node* node : all_nodes) {
        live_sources.push_back(std::make_unique<LiveTraceSource>(node));
        live_by_addr[node->addr()] = live_sources.back().get();
        if (node->forensics() != nullptr) {
          replay_sources.push_back(
              std::make_unique<ForensicsTraceSource>(node->forensics()));
        } else {
          replay_sources.push_back(std::make_unique<LiveTraceSource>(node));
        }
        replay_by_addr[node->addr()] = replay_sources.back().get();
      }
      auto resolver = [](std::map<std::string, TraceSource*>* m) {
        return [m](const std::string& a) -> TraceSource* {
          auto it = m->find(a);
          return it == m->end() ? nullptr : it->second;
        };
      };
      // Modest limits keep the sweep cheap; both walks truncate identically
      // because head enumeration is canonically ordered on both sources.
      ReplayLimits limits;
      limits.max_heads = 64;
      limits.max_depth = 32;
      for (size_t i = 0; i < all_nodes.size(); ++i) {
        NodeObs& n = obs.nodes[i];
        if (!n.forensics_enabled) {
          continue;
        }
        n.live_chain_digest = ChainDigest(ExportChainsJsonl(ReplayChains(
            resolver(&live_by_addr), n.addr, "*", 0, obs.now, limits)));
        n.replay_chain_digest = ChainDigest(ExportChainsJsonl(ReplayChains(
            resolver(&replay_by_addr), n.addr, "*", 0, obs.now, limits)));
      }
    }
  }
  return obs;
}

}  // namespace simtest
}  // namespace p2
