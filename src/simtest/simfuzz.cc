#include "src/simtest/simfuzz.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

#include "src/common/strings.h"
#include "src/net/network.h"
#include "src/tools/scenario.h"

namespace p2 {
namespace simtest {

namespace {

// Sorted dump of every materialized table except the sys* introspection family and
// (optionally) the trace tables. Row order inside a table is normalized by sorting
// the rendered rows, mirroring tests/engine/join_equivalence_test.cc.
std::string DumpTables(Network* net, bool include_trace) {
  std::string out;
  for (Node* node : net->AllNodes()) {
    for (Table* table : node->catalog().AllTables()) {
      const std::string& name = table->spec().name;
      if (StartsWith(name, "sys")) {
        continue;  // sweep-granular mirrors of wall-clock-tainted counters
      }
      if (!include_trace && (name == "ruleExec" || name == "tupleTable")) {
        continue;  // GC cadence differs across ablations
      }
      std::vector<std::string> rows;
      for (const TupleRef& t : node->TableContents(name)) {
        rows.push_back(t->ToString());
      }
      std::sort(rows.begin(), rows.end());
      out += StrFormat("== %s/%s (%zu) ==\n", node->addr().c_str(), name.c_str(),
                       rows.size());
      for (const std::string& r : rows) {
        out += r;
        out += "\n";
      }
    }
  }
  return out;
}

uint64_t CountCrashes(const Schedule& schedule) {
  uint64_t crashes = 0;
  for (const SimEvent& e : schedule.events) {
    if (e.kind == EvKind::kCrash) {
      ++crashes;
    }
  }
  return crashes;
}

// Reports the first line where two digests diverge.
std::string FirstDiff(const std::string& a, const std::string& b) {
  std::istringstream ia(a);
  std::istringstream ib(b);
  std::string la;
  std::string lb;
  int line = 0;
  while (true) {
    ++line;
    bool has_a = static_cast<bool>(std::getline(ia, la));
    bool has_b = static_cast<bool>(std::getline(ib, lb));
    if (!has_a && !has_b) {
      return "digests identical";
    }
    if (!has_a || !has_b || la != lb) {
      return StrFormat("line %d: '%s' vs '%s'", line, has_a ? la.c_str() : "<eof>",
                       has_b ? lb.c_str() : "<eof>");
    }
  }
}

}  // namespace

std::set<std::string> RunResult::FailedOracles() const {
  std::set<std::string> names;
  if (!script_ok) {
    names.insert("script");
  }
  for (const Violation& v : violations) {
    names.insert(v.oracle);
  }
  return names;
}

std::string RunResult::Summary() const {
  if (!failed()) {
    return "PASS";
  }
  std::string out = "FAIL:";
  if (!script_ok) {
    out += " script(" + script_error + ")";
  }
  for (const Violation& v : violations) {
    out += " " + v.oracle + "(" + v.detail + ")";
  }
  return out;
}

RunResult RunScenarioText(const std::string& scenario, const Schedule* meta,
                          const SimFuzzOptions& opts) {
  RunResult result;
  result.scenario = scenario;
  // Swallow interpreter output (dump/stats are not part of the harness contract).
  ScenarioRunner runner([](const std::string&) {});
  // One buffer per destination node: a node's tap fires on its owning shard's
  // thread, so a shared vector would race on sharded fleets. The map itself is
  // only mutated host-side between script lines (shards quiescent), and map nodes
  // are address-stable, so each tap can hold a reference to its own buffer.
  std::map<std::string, std::vector<ChannelDelivery>> deliveries_by_dst;
  std::set<std::string> tapped;
  std::istringstream in(scenario);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string line_error;
    if (!runner.RunLine(line, &line_error)) {
      result.script_ok = false;
      result.script_error = StrFormat("line %d: %s", line_no, line_error.c_str());
      break;
    }
    // Attach the reliable-delivery tap to nodes as they come into existence, before
    // any traffic flows (node creation and the first `run` are distinct lines).
    if (runner.network() != nullptr) {
      for (Node* node : runner.network()->AllNodes()) {
        if (tapped.insert(node->addr()).second) {
          std::string dst = node->addr();
          std::vector<ChannelDelivery>& buf = deliveries_by_dst[dst];
          node->SetReliableDeliveryTap([&buf, dst](const WireEnvelope& env) {
            buf.push_back(ChannelDelivery{env.src_addr, dst, env.epoch, env.seq});
          });
        }
      }
    }
  }
  if (runner.network() == nullptr) {
    if (result.script_ok) {
      result.script_ok = false;
      result.script_error = "scenario created no nodes";
    }
    return result;
  }
  // Concatenate per-destination buffers in address order: the FIFO oracle only
  // needs per-(src,dst) order, which each destination's own buffer preserves.
  std::vector<ChannelDelivery> deliveries;
  for (auto& [addr, buf] : deliveries_by_dst) {
    deliveries.insert(deliveries.end(), buf.begin(), buf.end());
  }
  FleetObservation obs = ObserveFleet(runner.network(), std::move(deliveries));
  if (meta != nullptr) {
    obs.faults_free = !ScheduleHasFaults(*meta);
    obs.snap_abort_timeout = meta->profile.snap_abort;
    obs.snap_abort_check = meta->profile.snap_check;
    obs.crash_events = CountCrashes(*meta);
  }
  std::vector<Oracle> oracles = BuiltinOracles();
  if (opts.broken_oracle) {
    oracles.push_back(BrokenCrashOracle());
  }
  RunOracles(oracles, obs, &result.violations);
  if (opts.export_chains_on_failure && !result.violations.empty() &&
      runner.fleet() != nullptr) {
    // Leave forensic context behind a failure: the replayed causal chains for
    // everything each retention-enabled node derived during the run.
    for (Node* node : runner.network()->AllNodes()) {
      if (node->forensics() != nullptr) {
        result.chain_export += ExportChainsJsonl(
            runner.fleet()->ReplayChains(node->addr(), "*", 0, obs.now));
      }
    }
  }
  result.table_digest = DumpTables(runner.network(), /*include_trace=*/false);
  result.full_digest = DumpTables(runner.network(), /*include_trace=*/true);
  result.total_msgs = obs.total_msgs;
  result.virtual_secs = obs.now;
  return result;
}

RunResult RunSchedule(const Schedule& schedule, const SimFuzzOptions& opts) {
  return RunScenarioText(ScheduleToScenario(schedule, opts.ablation), &schedule, opts);
}

Schedule ShrinkSchedule(const Schedule& schedule, const SimFuzzOptions& opts,
                        int* runs_out) {
  int runs = 0;
  // Shrink candidates fail on purpose; skip the chain export inside the loop.
  SimFuzzOptions inner = opts;
  inner.export_chains_on_failure = false;
  RunResult base = RunSchedule(schedule, inner);
  ++runs;
  Schedule current = schedule;
  if (base.failed()) {
    const std::set<std::string> target = base.FailedOracles();
    auto reproduces = [&](const Schedule& cand) {
      RunResult r = RunSchedule(cand, inner);
      ++runs;
      for (const std::string& oracle : r.FailedOracles()) {
        if (target.count(oracle) > 0) {
          return true;
        }
      }
      return false;
    };
    bool progress = true;
    while (progress) {
      progress = false;
      // Drop later events first: paired cleanup events (recover/heal/clear) vanish
      // before the faults they undo, keeping intermediate schedules well-formed.
      for (size_t i = current.events.size(); i-- > 0;) {
        Schedule cand = current;
        cand.events.erase(cand.events.begin() + static_cast<long>(i));
        if (reproduces(cand)) {
          current = cand;
          progress = true;
        }
      }
    }
  }
  if (runs_out != nullptr) {
    *runs_out = runs;
  }
  return current;
}

std::vector<std::string> DifferentialRun(const Schedule& schedule) {
  std::vector<std::string> diffs;
  RunResult base = RunSchedule(schedule, SimFuzzOptions{});
  if (!base.script_ok) {
    diffs.push_back("base run failed: " + base.script_error);
    return diffs;
  }
  // Join indexes, metrics, and forensics retention are pure observers, and the
  // engine hot-path toggles (arenas, delta batching, zero-copy decode) are pure
  // mechanical optimizations: turning any of them off must leave every
  // deterministic table bit-identical on the same seed.
  for (const char* which :
       {"indexes", "metrics", "forensics", "arenas", "batch", "zerocopy"}) {
    SimFuzzOptions opts;
    if (std::string(which) == "indexes") {
      opts.ablation.use_join_indexes = false;
    } else if (std::string(which) == "metrics") {
      opts.ablation.metrics = false;
    } else if (std::string(which) == "forensics") {
      opts.ablation.forensics = false;
    } else if (std::string(which) == "arenas") {
      opts.ablation.tuple_arenas = false;
    } else if (std::string(which) == "batch") {
      opts.ablation.batch_deltas = false;
    } else {
      opts.ablation.zero_copy_decode = false;
    }
    RunResult ablated = RunSchedule(schedule, opts);
    if (!ablated.script_ok) {
      diffs.push_back(StrFormat("%s-off run failed: %s", which,
                                ablated.script_error.c_str()));
    } else if (ablated.table_digest != base.table_digest) {
      diffs.push_back(StrFormat("%s-off table digest diverged: %s", which,
                                FirstDiff(base.table_digest,
                                          ablated.table_digest).c_str()));
    }
  }
  // Reliable transport changes the message interleaving (acks draw from the same
  // jitter RNG), so digests legitimately differ; the invariants must still hold.
  {
    SimFuzzOptions opts;
    opts.ablation.reliable_transport = false;
    RunResult ablated = RunSchedule(schedule, opts);
    if (ablated.failed()) {
      diffs.push_back("reliable-off run failed: " + ablated.Summary());
    }
  }
  // Overload limits can shed best-effort tuples, so digests legitimately differ
  // from the limits-off base; the run must still pass every oracle — now including
  // the armed overload oracle (caps hold, control plane survives, degrade restores).
  {
    SimFuzzOptions opts;
    opts.ablation.overload_limits = true;
    RunResult ablated = RunSchedule(schedule, opts);
    if (ablated.failed()) {
      diffs.push_back("limits-on run failed: " + ablated.Summary());
    }
  }
  return diffs;
}

}  // namespace simtest
}  // namespace p2
