#include "src/simtest/schedule.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <utility>

#include "src/common/rng.h"
#include "src/common/strings.h"

namespace p2 {
namespace simtest {

namespace {

// Millisecond quantization: every time in a schedule is a multiple of 1 ms, so its
// decimal rendering (<= 3 fraction digits) parses back to the identical double and
// the scenario text is a fixed point of parse-then-render.
double QuantMs(double x) { return std::round(x * 1000.0) / 1000.0; }

// Renders with up to 3 fraction digits, trailing zeros trimmed ("0.200" -> "0.2").
std::string FmtNum(double x) {
  std::string s = StrFormat("%.3f", x);
  while (!s.empty() && s.back() == '0') {
    s.pop_back();
  }
  if (!s.empty() && s.back() == '.') {
    s.pop_back();
  }
  return s;
}

std::string FmtU64(uint64_t v) {
  return StrFormat("%llu", static_cast<unsigned long long>(v));
}

uint64_t NodeSeed(uint64_t seed, int i) { return seed * 100 + i + 1; }

// The canonical partition rendering: the first `split` nodes vs the rest.
std::string PartitionGroups(int split, int num_nodes, bool first_group) {
  std::vector<std::string> addrs;
  int lo = first_group ? 0 : split;
  int hi = first_group ? split : num_nodes;
  for (int i = lo; i < hi; ++i) {
    addrs.push_back(AddrOf(i));
  }
  return Join(addrs, ",");
}

bool ParseKvNum(const std::map<std::string, std::string>& kv, const std::string& key,
                double* out, std::string* error) {
  auto it = kv.find(key);
  if (it == kv.end()) {
    *error = "missing " + key;
    return false;
  }
  *out = std::strtod(it->second.c_str(), nullptr);
  return true;
}

std::map<std::string, std::string> KvPairs(const std::vector<std::string>& words,
                                           size_t from) {
  std::map<std::string, std::string> kv;
  for (size_t i = from; i < words.size(); ++i) {
    size_t eq = words[i].find('=');
    if (eq != std::string::npos) {
      kv[words[i].substr(0, eq)] = words[i].substr(eq + 1);
    }
  }
  return kv;
}

// Splits on runs of spaces (scenario lines never quote spaces in simfuzz output).
std::vector<std::string> SplitWords(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : line) {
    if (c == ' ' || c == '\t') {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) {
    out.push_back(cur);
  }
  return out;
}

// Parses "n<i>" back to i; returns -1 on anything else.
int IndexOfAddr(const std::string& addr) {
  if (addr.size() < 2 || addr[0] != 'n' ||
      addr.find_first_not_of("0123456789", 1) != std::string::npos) {
    return -1;
  }
  return static_cast<int>(std::strtol(addr.c_str() + 1, nullptr, 10));
}

}  // namespace

std::string AddrOf(int i) { return StrFormat("n%d", i); }

FuzzProfile FuzzProfile::Quiet() {
  FuzzProfile p;
  p.put_events = 3;
  p.get_events = 3;
  return p;
}

FuzzProfile FuzzProfile::Faulty() {
  FuzzProfile p;
  p.churn_events = 2;
  p.linkfault_events = 2;
  p.partition_events = 1;
  p.put_events = 3;
  p.get_events = 3;
  return p;
}

bool ScheduleHasFaults(const Schedule& schedule) {
  if (schedule.profile.loss > 0) {
    return true;
  }
  for (const SimEvent& e : schedule.events) {
    if (e.kind == EvKind::kCrash || e.kind == EvKind::kLinkFault ||
        e.kind == EvKind::kPartition) {
      return true;
    }
  }
  return false;
}

Schedule GenerateSchedule(uint64_t seed, const FuzzProfile& profile) {
  Schedule s;
  s.seed = seed;
  s.profile = profile;
  Rng rng(seed ^ 0x5117f0dd);  // decouple schedule draws from net/node seeds
  const int n = profile.num_nodes;
  const double window = profile.duration;
  auto when = [&](double frac_lo, double frac_hi) {
    double t = window * (frac_lo + (frac_hi - frac_lo) * rng.NextDouble());
    return QuantMs(std::min(t, window));
  };
  for (int i = 0; i < profile.churn_events; ++i) {
    SimEvent crash;
    crash.kind = EvKind::kCrash;
    crash.a = 1 + static_cast<int>(rng.NextBelow(n - 1));  // n0 is landmark+initiator
    crash.at = when(0, 0.6);
    SimEvent recover = crash;
    recover.kind = EvKind::kRecover;
    recover.at = QuantMs(std::min(crash.at + 3 + 0.25 * window * rng.NextDouble(),
                                  window));
    s.events.push_back(crash);
    s.events.push_back(recover);
  }
  for (int i = 0; i < profile.linkfault_events; ++i) {
    SimEvent f;
    f.kind = EvKind::kLinkFault;
    f.a = static_cast<int>(rng.NextBelow(n));
    f.b = static_cast<int>(rng.NextBelow(n - 1));
    if (f.b >= f.a) {
      ++f.b;  // distinct dst
    }
    switch (rng.NextBelow(4)) {
      case 0:
        f.loss = 0.2;
        break;
      case 1:
        f.dup = 0.3;
        break;
      case 2:
        f.reorder = 0.5;
        break;
      default:
        f.loss = 0.2;
        f.dup = 0.2;
        f.reorder = 0.2;
        f.latency = 0.1;
        break;
    }
    f.at = when(0, 0.7);
    SimEvent clear;
    clear.kind = EvKind::kLinkClear;
    clear.a = f.a;
    clear.b = f.b;
    clear.at = QuantMs(std::min(f.at + 5 + 10 * rng.NextDouble(), window));
    s.events.push_back(f);
    s.events.push_back(clear);
  }
  for (int i = 0; i < profile.partition_events; ++i) {
    SimEvent p;
    p.kind = EvKind::kPartition;
    p.b = 1 + static_cast<int>(rng.NextBelow(n - 1));  // split point
    p.at = when(0, 0.7);
    SimEvent heal;
    heal.kind = EvKind::kHeal;
    heal.at = QuantMs(std::min(p.at + 3 + 7 * rng.NextDouble(), window));
    s.events.push_back(p);
    s.events.push_back(heal);
  }
  for (int i = 0; i < profile.put_events; ++i) {
    SimEvent p;
    p.kind = EvKind::kPut;
    p.a = static_cast<int>(rng.NextBelow(n));
    p.key = StrFormat("k%d", i);
    p.value = StrFormat("v%d", i);
    p.req = 1000 + i;
    p.at = when(0, 1.0);
    s.events.push_back(p);
  }
  for (int i = 0; i < profile.get_events; ++i) {
    SimEvent g;
    g.kind = EvKind::kGet;
    g.a = static_cast<int>(rng.NextBelow(n));
    g.key = StrFormat("k%d", profile.put_events > 0
                                ? static_cast<int>(rng.NextBelow(profile.put_events))
                                : i);
    g.req = 2000 + i;
    g.at = when(0.2, 1.0);  // give puts a head start on average
    s.events.push_back(g);
  }
  std::stable_sort(s.events.begin(), s.events.end(),
                   [](const SimEvent& x, const SimEvent& y) { return x.at < y.at; });
  return s;
}

std::string ScheduleToScenario(const Schedule& s, const Ablation& ablation) {
  const FuzzProfile& p = s.profile;
  std::ostringstream out;
  out << "# simfuzz seed=" << FmtU64(s.seed) << "\n";
  out << "# profile nodes=" << p.num_nodes << " warmup=" << FmtNum(p.warmup)
      << " duration=" << FmtNum(p.duration) << " settle=" << FmtNum(p.settle)
      << " latency=" << FmtNum(p.latency) << " jitter=" << FmtNum(p.jitter)
      << " loss=" << FmtNum(p.loss) << " snap_period=" << FmtNum(p.snap_period)
      << " abort=" << FmtNum(p.snap_abort) << " check=" << FmtNum(p.snap_check)
      << " probe=" << FmtNum(p.probe_period) << " churn=" << p.churn_events
      << " linkfaults=" << p.linkfault_events << " partitions=" << p.partition_events
      << " puts=" << p.put_events << " gets=" << p.get_events
      << " shards=" << p.shards << "\n";
  out << "# ablation indexes=" << (ablation.use_join_indexes ? "on" : "off")
      << " metrics=" << (ablation.metrics ? "on" : "off")
      << " reliable=" << (ablation.reliable_transport ? "on" : "off")
      << " forensics=" << (ablation.forensics ? "on" : "off");
  if (ablation.overload_limits) {
    // Appended only when on so pre-existing scenario files round-trip unchanged.
    out << " limits=on";
  }
  // Hot-path toggles render only when off (their default is on), again so older
  // scenario files stay canonical fixed points.
  if (!ablation.tuple_arenas) {
    out << " arenas=off";
  }
  if (!ablation.batch_deltas) {
    out << " batch=off";
  }
  if (!ablation.zero_copy_decode) {
    out << " zerocopy=off";
  }
  out << "\n";
  out << "net latency=" << FmtNum(p.latency) << " jitter=" << FmtNum(p.jitter)
      << " loss=" << FmtNum(p.loss) << " seed=" << FmtU64(s.seed)
      << " shards=" << p.shards << "\n";
  if (ablation.forensics) {
    // Generous budget: fuzz runs must not drop segments, so the
    // retention-consistency oracle compares complete histories.
    out << "forensics budget=8388608 span=5\n";
  }
  if (ablation.overload_limits) {
    out << kFuzzLimitsLine;
  }
  for (int i = 0; i < p.num_nodes; ++i) {
    out << "node " << AddrOf(i) << " trace seed=" << FmtU64(NodeSeed(s.seed, i));
    if (!ablation.use_join_indexes) {
      out << " indexes=off";
    }
    if (!ablation.metrics) {
      out << " metrics=off";
    }
    if (!ablation.reliable_transport) {
      out << " reliable=off";
    }
    if (!ablation.tuple_arenas) {
      out << " arenas=off";
    }
    if (!ablation.batch_deltas) {
      out << " batch=off";
    }
    if (!ablation.zero_copy_decode) {
      out << " zerocopy=off";
    }
    out << "\n";
  }
  out << "chord all landmark=n0\n";
  out << "monitors all initiator=n0 snap_period=" << FmtNum(p.snap_period)
      << " abort=" << FmtNum(p.snap_abort) << " check=" << FmtNum(p.snap_check)
      << " probe=" << FmtNum(p.probe_period) << "\n";
  out << "dht all\n";
  out << "run " << FmtNum(p.warmup) << "\n";
  out << "# events\n";
  double cursor = 0;  // seconds since the fault window opened
  std::vector<std::pair<int, int>> faulted_links;
  for (const SimEvent& e : s.events) {
    if (e.at > cursor) {
      out << "run " << FmtNum(QuantMs(e.at - cursor)) << "\n";
      cursor = e.at;
    }
    switch (e.kind) {
      case EvKind::kCrash:
        out << "crash " << AddrOf(e.a) << "\n";
        break;
      case EvKind::kRecover:
        out << "recover " << AddrOf(e.a) << "\n";
        break;
      case EvKind::kLinkFault: {
        out << "linkfault " << AddrOf(e.a) << " " << AddrOf(e.b);
        if (e.loss > 0) {
          out << " loss=" << FmtNum(e.loss);
        }
        if (e.dup > 0) {
          out << " dup=" << FmtNum(e.dup);
        }
        if (e.reorder > 0) {
          out << " reorder=" << FmtNum(e.reorder);
        }
        if (e.latency > 0) {
          out << " latency=" << FmtNum(e.latency);
        }
        out << "\n";
        std::pair<int, int> link{e.a, e.b};
        if (std::find(faulted_links.begin(), faulted_links.end(), link) ==
            faulted_links.end()) {
          faulted_links.push_back(link);
        }
        break;
      }
      case EvKind::kLinkClear:
        out << "linkfault " << AddrOf(e.a) << " " << AddrOf(e.b) << "\n";
        break;
      case EvKind::kPartition:
        out << "partition " << PartitionGroups(e.b, p.num_nodes, true) << " "
            << PartitionGroups(e.b, p.num_nodes, false) << "\n";
        break;
      case EvKind::kHeal:
        out << "heal\n";
        break;
      case EvKind::kPut:
        out << "put " << AddrOf(e.a) << " " << e.key << " " << e.value << " "
            << FmtU64(e.req) << "\n";
        break;
      case EvKind::kGet:
        out << "get " << AddrOf(e.a) << " " << e.key << " " << FmtU64(e.req) << "\n";
        break;
    }
  }
  if (cursor < p.duration) {
    out << "run " << FmtNum(QuantMs(p.duration - cursor)) << "\n";
  }
  out << "# epilogue\n";
  out << "heal\n";
  for (const auto& [a, b] : faulted_links) {
    out << "linkfault " << AddrOf(a) << " " << AddrOf(b) << "\n";
  }
  out << "recover all\n";
  out << "run " << FmtNum(p.settle) << "\n";
  return out.str();
}

bool ScenarioToSchedule(const std::string& text, Schedule* out, std::string* error) {
  Schedule s;
  Ablation ablation;
  bool saw_seed = false;
  bool saw_profile = false;
  bool in_events = false;
  bool in_epilogue = false;
  double cursor = 0;  // absolute virtual time implied by `run` lines
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::vector<std::string> words = SplitWords(line);
    if (words.empty()) {
      continue;
    }
    auto fail = [&](const std::string& msg) {
      *error = StrFormat("line %d: %s", line_no, msg.c_str());
      return false;
    };
    if (words[0] == "#") {
      if (words.size() >= 2 && words[1] == "simfuzz") {
        std::map<std::string, std::string> kv = KvPairs(words, 2);
        auto it = kv.find("seed");
        if (it == kv.end()) {
          return fail("simfuzz header missing seed");
        }
        s.seed = std::strtoull(it->second.c_str(), nullptr, 10);
        saw_seed = true;
      } else if (words.size() >= 2 && words[1] == "profile") {
        std::map<std::string, std::string> kv = KvPairs(words, 2);
        FuzzProfile& p = s.profile;
        double v = 0;
        struct Field {
          const char* key;
          double* dval;
          int* ival;
        };
        Field fields[] = {
            {"nodes", nullptr, &p.num_nodes},
            {"warmup", &p.warmup, nullptr},
            {"duration", &p.duration, nullptr},
            {"settle", &p.settle, nullptr},
            {"latency", &p.latency, nullptr},
            {"jitter", &p.jitter, nullptr},
            {"loss", &p.loss, nullptr},
            {"snap_period", &p.snap_period, nullptr},
            {"abort", &p.snap_abort, nullptr},
            {"check", &p.snap_check, nullptr},
            {"probe", &p.probe_period, nullptr},
            {"churn", nullptr, &p.churn_events},
            {"linkfaults", nullptr, &p.linkfault_events},
            {"partitions", nullptr, &p.partition_events},
            {"puts", nullptr, &p.put_events},
            {"gets", nullptr, &p.get_events},
            {"shards", nullptr, &p.shards},
        };
        for (const Field& f : fields) {
          if (!ParseKvNum(kv, f.key, &v, error)) {
            return fail(*error);
          }
          if (f.dval != nullptr) {
            *f.dval = v;
          } else {
            *f.ival = static_cast<int>(v);
          }
        }
        saw_profile = true;
      } else if (words.size() >= 2 && words[1] == "ablation") {
        std::map<std::string, std::string> kv = KvPairs(words, 2);
        ablation.use_join_indexes = kv["indexes"] != "off";
        ablation.metrics = kv["metrics"] != "off";
        ablation.reliable_transport = kv["reliable"] != "off";
        ablation.forensics = kv["forensics"] != "off";
        ablation.overload_limits = kv["limits"] == "on";  // absent in older files
        // Hot-path toggles: absent (older files) means on.
        ablation.tuple_arenas = kv["arenas"] != "off";
        ablation.batch_deltas = kv["batch"] != "off";
        ablation.zero_copy_decode = kv["zerocopy"] != "off";
      } else if (words.size() >= 2 && words[1] == "events") {
        in_events = true;
        cursor = s.profile.warmup;
      } else if (words.size() >= 2 && words[1] == "epilogue") {
        in_epilogue = true;
        in_events = false;
      }
      continue;
    }
    if (words[0] == "run") {
      if (words.size() != 2) {
        return fail("run <secs>");
      }
      cursor += std::strtod(words[1].c_str(), nullptr);
      continue;
    }
    if (!in_events) {
      // Setup and epilogue directives are regenerated from the profile; accept the
      // known shapes and ignore them.
      if (words[0] == "net" || words[0] == "node" || words[0] == "chord" ||
          words[0] == "monitors" || words[0] == "dht" || words[0] == "forensics" ||
          words[0] == "limits" ||
          (in_epilogue && (words[0] == "heal" || words[0] == "linkfault" ||
                           words[0] == "recover"))) {
        continue;
      }
      return fail("unexpected directive outside the event window: " + words[0]);
    }
    SimEvent e;
    e.at = QuantMs(cursor - s.profile.warmup);
    if (words[0] == "crash" || words[0] == "recover") {
      if (words.size() != 2 || IndexOfAddr(words[1]) < 0) {
        return fail(words[0] + " <n-addr>");
      }
      e.kind = words[0] == "crash" ? EvKind::kCrash : EvKind::kRecover;
      e.a = IndexOfAddr(words[1]);
    } else if (words[0] == "linkfault") {
      if (words.size() < 3 || IndexOfAddr(words[1]) < 0 || IndexOfAddr(words[2]) < 0) {
        return fail("linkfault <src> <dst> [k=v ...]");
      }
      e.a = IndexOfAddr(words[1]);
      e.b = IndexOfAddr(words[2]);
      if (words.size() == 3) {
        e.kind = EvKind::kLinkClear;
      } else {
        e.kind = EvKind::kLinkFault;
        std::map<std::string, std::string> kv = KvPairs(words, 3);
        e.loss = std::strtod(kv["loss"].c_str(), nullptr);
        e.dup = std::strtod(kv["dup"].c_str(), nullptr);
        e.reorder = std::strtod(kv["reorder"].c_str(), nullptr);
        e.latency = std::strtod(kv["latency"].c_str(), nullptr);
      }
    } else if (words[0] == "partition") {
      if (words.size() != 3) {
        return fail("partition <group> <group>");
      }
      std::vector<std::string> group_a = Split(words[1], ',');
      std::vector<std::string> group_b = Split(words[2], ',');
      e.kind = EvKind::kPartition;
      e.b = static_cast<int>(group_a.size());
      // Only the canonical prefix/suffix split round-trips.
      if (static_cast<int>(group_a.size() + group_b.size()) != s.profile.num_nodes) {
        return fail("non-canonical partition groups");
      }
      for (int i = 0; i < s.profile.num_nodes; ++i) {
        const std::string& got = i < e.b ? group_a[i] : group_b[i - e.b];
        if (got != AddrOf(i)) {
          return fail("non-canonical partition groups");
        }
      }
    } else if (words[0] == "heal") {
      e.kind = EvKind::kHeal;
    } else if (words[0] == "put") {
      if (words.size() != 5 || IndexOfAddr(words[1]) < 0) {
        return fail("put <n-addr> <key> <value> <reqid>");
      }
      e.kind = EvKind::kPut;
      e.a = IndexOfAddr(words[1]);
      e.key = words[2];
      e.value = words[3];
      e.req = std::strtoull(words[4].c_str(), nullptr, 10);
    } else if (words[0] == "get") {
      if (words.size() != 4 || IndexOfAddr(words[1]) < 0) {
        return fail("get <n-addr> <key> <reqid>");
      }
      e.kind = EvKind::kGet;
      e.a = IndexOfAddr(words[1]);
      e.key = words[2];
      e.req = std::strtoull(words[3].c_str(), nullptr, 10);
    } else {
      return fail("unknown event directive: " + words[0]);
    }
    s.events.push_back(std::move(e));
  }
  if (!saw_seed || !saw_profile) {
    *error = "not a simfuzz scenario (missing # simfuzz / # profile header)";
    return false;
  }
  // Verify the fixed point: rendering the parse must reproduce the input.
  std::string rendered = ScheduleToScenario(s, ablation);
  if (rendered != text) {
    *error = "scenario is not in canonical simfuzz form (render mismatch)";
    return false;
  }
  *out = std::move(s);
  return true;
}

}  // namespace simtest
}  // namespace p2
