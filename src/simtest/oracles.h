// Invariant oracles for the simulation fuzzer (docs/TESTING.md).
//
// Every oracle is a pure predicate over a FleetObservation — a structured dump of
// the engine's own introspection surface (ruleExec/tupleTable trace tables, reliable
// channel stats, soft-state table counters, snapshot state, network counters) taken
// after a schedule has run. Because oracles consume plain data rather than a live
// fleet, each one can be unit-tested against a synthesized violation (no vacuous
// oracles: tests/simtest/oracle_test.cc proves each fires).
//
// The invariants are the paper's own monitoring claims turned inward: the execution
// trace must form a causally consistent record (§2.1), cross-node provenance links
// must resolve (§2.1.3), the reliable channels must honor per-epoch FIFO exactly-once
// delivery (docs/ROBUSTNESS.md), soft state must respect its declared bounds, and
// snapshots must terminate — complete or aborted-with-diagnostic, never hung (§3.3).

#ifndef SRC_SIMTEST_ORACLES_H_
#define SRC_SIMTEST_ORACLES_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/net/node.h"

namespace p2 {
namespace simtest {

// One reliable in-order delivery accepted by the transport on `dst`, in global
// delivery order (captured via Node::SetReliableDeliveryTap).
struct ChannelDelivery {
  std::string src;
  std::string dst;
  uint64_t epoch = 0;
  uint64_t seq = 0;
};

// Size/bounds/counters of one materialized table on one node.
struct TableObs {
  std::string name;
  uint64_t live_rows = 0;
  uint64_t max_size = 0;  // SIZE_MAX = unbounded
  TableCounters counters;
};

// One cross-node tupleTable provenance link (local row referencing a remote origin).
struct CrossRef {
  std::string node;          // node holding the tupleTable row
  uint64_t tuple_id = 0;     // local id
  std::string src_addr;      // claimed origin node
  uint64_t src_tuple_id = 0;  // claimed origin id
  bool src_node_known = false;   // origin node exists in the fleet
  bool resolved_local = false;   // tuple_id still memoized locally
  bool resolved_src = false;     // src_tuple_id still memoized at the origin
  std::string local_text;        // tuple text when resolved_local
  std::string src_text;          // tuple text when resolved_src
};

// A ruleExec row, flattened (paper §2.1.1 Figure 2 schema).
struct RuleExecObs {
  std::string rule_id;
  uint64_t cause_id = 0;
  uint64_t effect_id = 0;
  double cause_time = 0;
  double out_time = 0;
  bool is_event = false;
  bool cause_resolved = false;   // cause_id memoized in the node's store
  bool effect_resolved = false;  // effect_id memoized in the node's store
  // Whether the effect tuple's name is a materialized table on the node. A
  // materialized head may legitimately re-derive its own cause at one instant (the
  // table absorbs it as a refresh, which breaks the loop); an event head cannot —
  // a same-instant event cycle would recurse forever.
  bool effect_materialized = true;
};

// A snapState row plus its matching snapStarted time (if still live).
struct SnapObs {
  int64_t snap_id = 0;
  std::string state;          // "Snapping" | "Done" | "Aborted"
  bool has_started_time = false;
  double started_time = 0;
  bool has_diag = false;      // some snapDiag row exists for snap_id
};

struct NodeObs {
  std::string addr;
  bool up = true;
  NodeStats stats;
  uint64_t rule_emits_total = 0;    // Σ RuleMetrics.emits (0 when metrics off)
  bool metrics_enabled = false;
  // Forensics retention (docs/OBSERVABILITY.md): digests of the key="*" causal-chain
  // export over the whole run window, walked once from the live trace tables and
  // once replayed through the fleet's forensics stores. Equal whenever neither side
  // has lost history (see FleetObservation::forensics_comparable).
  bool forensics_enabled = false;
  std::string live_chain_digest;
  std::string replay_chain_digest;
  // Overload-resilience configuration and state (docs/ROBUSTNESS.md). Caps mirror
  // NodeOptions (0 = unlimited); the overload oracle only judges a bound when its
  // cap is configured, so limits-off observations are vacuously clean.
  uint64_t queue_cap = 0;
  uint64_t low_queue_cap = 0;
  uint64_t rel_window = 0;
  uint64_t rel_backlog_cap = 0;
  uint64_t rel_reorder_cap = 0;
  uint64_t queue_depth = 0;  // deliveries still queued at observation time
  bool degraded = false;     // watchdog state at observation time
  std::vector<RuleExecObs> rule_exec;
  std::vector<CrossRef> cross_refs;
  std::map<std::string, Node::ChannelStat> channels;  // per-peer reliable stats
  std::vector<TableObs> tables;
  std::vector<SnapObs> snapshots;
};

// Everything the oracles consume, extracted in one pass after a run.
struct FleetObservation {
  double now = 0;
  // True when the schedule injected no loss/dup/reorder/partition/crash at all
  // (enables the strict message-conservation checks).
  bool faults_free = false;
  // The snapshot abort timeout the fleet ran with (0 = abort machinery off, the
  // liveness oracle then only checks Aborted => diag).
  double snap_abort_timeout = 0;
  double snap_abort_check = 1.0;
  // Number of crash directives the schedule executed (consumed by the test-only
  // broken oracle that anchors the shrinking tests).
  uint64_t crash_events = 0;
  // True when the live-vs-replay chain digests are a fair comparison: no forensics
  // store dropped a segment and no ruleExec/tupleTable row expired, was deleted, or
  // was evicted anywhere in the fleet — then the forensics dual-write must
  // reconstruct exactly the chains the live tables walk to.
  bool forensics_comparable = false;
  // Network-level counters.
  uint64_t total_msgs = 0;
  uint64_t dropped_msgs = 0;
  uint64_t duplicated_msgs = 0;
  uint64_t reordered_msgs = 0;
  uint64_t delivered_msgs = 0;  // Σ per-channel delivered
  std::vector<NodeObs> nodes;
  std::vector<ChannelDelivery> deliveries;
};

struct Violation {
  std::string oracle;
  std::string detail;
};

// An invariant oracle: appends one Violation per broken instance it finds.
struct Oracle {
  std::string name;
  std::string description;
  std::function<void(const FleetObservation&, std::vector<Violation>*)> check;
};

// The built-in oracle library (each covered by tests/simtest/oracle_test.cc):
//   causality        — ruleExec rows have CauseTime <= OutTime within [0, now], and
//                      the same-instant derivation subgraph is acyclic
//   trace-refs       — live ruleExec/tupleTable ids resolve in the local store;
//                      resolved cross-node links carry identical tuple content
//   reliable-fifo    — per (src,dst): epochs never regress and every epoch's
//                      delivered seqs are exactly 1,2,3,... (no gap/dup/reorder)
//   channel-stats    — per peer: Acked <= Sent and Failed <= Sent
//   soft-state       — per table: live rows within max_size and consistent with the
//                      mutation counters (live <= inserts - expires - deletes - evictions)
//   snapshot-liveness— no snapshot stays "Snapping" past the abort deadline, and
//                      every "Aborted" snapshot left a snapDiag row
//   conservation     — network message accounting balances (and is loss-free when
//                      the schedule injected no faults)
//   retention-consistency — when no history has been lost on either side, chains
//                      replayed from the forensics stores are bit-identical to the
//                      chains walked from the live trace tables
//   overload         — bounded memory under admission limits (each configured cap's
//                      high-water mark stayed within it), control-plane survival
//                      (no reliable/control tuple was ever shed), and liveness
//                      (after the epilogue settles, up nodes drained their queues
//                      and exited degraded mode)
std::vector<Oracle> BuiltinOracles();

// Test-only oracle that rejects any schedule containing a crash event: a known-false
// invariant used to exercise failure reporting, shrinking, and scenario replay.
Oracle BrokenCrashOracle();

// Runs `oracles` over `obs`, appending all violations.
void RunOracles(const std::vector<Oracle>& oracles, const FleetObservation& obs,
                std::vector<Violation>* out);

// Extracts a FleetObservation from a live fleet (all nodes of `net`). `deliveries`
// is the tap log accumulated while the schedule ran (the harness owns it).
FleetObservation ObserveFleet(Network* net, std::vector<ChannelDelivery> deliveries);

}  // namespace simtest
}  // namespace p2

#endif  // SRC_SIMTEST_ORACLES_H_
